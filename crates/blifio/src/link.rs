//! Hierarchy linking: `.subckt` elaboration, library-cell resolution,
//! KISS lowering, and flattening into a retiming-graph [`Circuit`].
//!
//! Flattening has two stages. *Elaboration* walks the model hierarchy
//! from the link root, binding `.subckt` formals to parent actuals and
//! prefixing instance-local names with `{model}${ordinal}.` paths; it
//! produces flat gate/latch lists over a second, flat-name interner (no
//! string maps on the hot path — drivers are indexed by symbol).
//! *Construction* then ports the proven semantics of the old
//! single-model reader: latches fold onto consumer edges as FF chains,
//! and gate nodes whose signal collides with a primary-output name get
//! a `$g` suffix.
//!
//! Embedded KISS FSM blocks are lowered first: each block is parsed
//! with `workloads::kiss`, synthesised to gates, converted back to an
//! auxiliary model, and the block replaced by a `.subckt` of it.

use crate::ast::{BlifFile, Command, Model, Names, Subckt};
use crate::diag::{BlifError, Diag};
use crate::intern::{Interner, Symbol};
use crate::lib_cells::{is_output_pin, lookup_cell, lookup_latch_cell};
use crate::write::model_from_circuit;
use netlist::{Bit, Circuit, NetlistError, NodeId, TruthTable};
use std::collections::HashMap;
use workloads::kiss::{parse_kiss2, synthesize_stg};
use workloads::Encoding;

/// Options controlling hierarchy flattening.
#[derive(Debug, Clone)]
pub struct LinkOptions {
    /// Link root model name; defaults to the first non-blackbox model.
    pub root: Option<String>,
    /// State encoding for embedded KISS FSMs.
    pub encoding: Encoding,
}

impl Default for LinkOptions {
    fn default() -> LinkOptions {
        LinkOptions {
            root: None,
            encoding: Encoding::Binary,
        }
    }
}

/// Flattens a parsed (possibly hierarchical) BLIF file into a circuit.
///
/// # Errors
///
/// Positioned [`Diag`]s for link problems (unknown models, bad port
/// bindings, recursion, blackbox instantiation), and the old reader's
/// [`NetlistError`]s for driver conflicts and undefined signals.
pub fn flatten(file: &BlifFile, opts: &LinkOptions) -> Result<Circuit, BlifError> {
    match kiss_lower(file, opts.encoding)? {
        Some(lowered) => flatten_nokiss(&lowered, opts),
        None => flatten_nokiss(file, opts),
    }
}

/// Replaces every embedded KISS block with a `.subckt` of an auxiliary
/// model synthesised through `workloads::kiss`. Returns `None` when the
/// file has no KISS blocks (nothing to clone).
fn kiss_lower(file: &BlifFile, encoding: Encoding) -> Result<Option<BlifFile>, BlifError> {
    let any = file
        .models
        .iter()
        .any(|m| m.commands.iter().any(|c| matches!(c, Command::Kiss(_))));
    if !any {
        return Ok(None);
    }
    let mut out = file.clone();
    let mut aux: Vec<Model> = Vec::new();
    for mi in 0..out.models.len() {
        for ci in 0..out.models[mi].commands.len() {
            let Command::Kiss(block) = &out.models[mi].commands[ci] else {
                continue;
            };
            let base = block.line as usize;
            let stg = parse_kiss2(&block.text)
                .map_err(|e| Diag::new(base + e.line, 1, format!("KISS: {}", e.message)))?;
            let (nin, nout) = (out.models[mi].inputs.len(), out.models[mi].outputs.len());
            if stg.inputs == 0 {
                return Err(
                    Diag::new(base, 1, "KISS block with zero inputs is not supported").into(),
                );
            }
            if stg.inputs != nin || stg.outputs != nout {
                return Err(Diag::new(
                    base,
                    1,
                    format!(
                        "KISS block is {}-in/{}-out but model `{}` declares {nin}/{nout}",
                        stg.inputs, stg.outputs, out.models[mi].name
                    ),
                )
                .into());
            }
            let aux_name = format!("{}$kiss{}", out.models[mi].name, ci);
            let circ = synthesize_stg(&stg, encoding, &aux_name)?;
            let aux_model = model_from_circuit(&circ, &mut out.interner, block.line);
            let model_sym = out.interner.intern(&aux_name);
            let mut conns = Vec::with_capacity(nin + nout);
            for (i, &actual) in file.models[mi].inputs.iter().enumerate() {
                conns.push((out.interner.intern(&format!("in{i}")), actual));
            }
            for (j, &actual) in file.models[mi].outputs.iter().enumerate() {
                conns.push((out.interner.intern(&format!("out{j}")), actual));
            }
            out.models[mi].commands[ci] = Command::Subckt(Subckt {
                model: model_sym,
                conns,
                line: block.line,
            });
            aux.push(aux_model);
        }
    }
    out.models.extend(aux);
    Ok(Some(out))
}

/// A flattened gate: resolved truth table over flat signal symbols.
struct FlatGate {
    inputs: Vec<Symbol>,
    output: Symbol,
    tt: TruthTable,
    line: u32,
}

/// A flattened latch (FF with a three-valued initial state).
struct FlatLatch {
    input: Symbol,
    output: Symbol,
    init: Bit,
    line: u32,
}

#[derive(Default)]
struct Flat {
    names: Interner,
    gates: Vec<FlatGate>,
    latches: Vec<FlatLatch>,
}

struct Linker<'a> {
    file: &'a BlifFile,
    model_idx: HashMap<&'a str, usize>,
    /// Per model: truth tables of its `.names` blocks, computed once.
    tts: Vec<Option<Vec<TruthTable>>>,
    flat: Flat,
}

fn diag(line: u32, msg: impl Into<String>) -> BlifError {
    Diag::new(line as usize, 1, msg).into()
}

impl<'a> Linker<'a> {
    fn new(file: &'a BlifFile) -> Linker<'a> {
        let model_idx = file
            .models
            .iter()
            .enumerate()
            .map(|(i, m)| (m.name.as_str(), i))
            .collect();
        Linker {
            file,
            model_idx,
            tts: vec![None; file.models.len()],
            flat: Flat::default(),
        }
    }

    fn ensure_tts(&mut self, mi: usize) -> Result<(), BlifError> {
        if self.tts[mi].is_some() {
            return Ok(());
        }
        let mut tts = Vec::new();
        for cmd in &self.file.models[mi].commands {
            if let Command::Names(n) = cmd {
                tts.push(names_tt(n)?);
            }
        }
        self.tts[mi] = Some(tts);
        Ok(())
    }

    /// The flat symbol for a model-local signal inside one instance.
    fn flat_sym(
        &mut self,
        map: &mut HashMap<Symbol, Symbol>,
        prefix: &str,
        local: Symbol,
    ) -> Symbol {
        if let Some(&s) = map.get(&local) {
            return s;
        }
        let name = self.file.interner.resolve(local);
        let s = if prefix.is_empty() {
            self.flat.names.intern(name)
        } else {
            self.flat.names.intern(&format!("{prefix}{name}"))
        };
        map.insert(local, s);
        s
    }

    /// Expands model `mi` under `prefix` with the given port bindings.
    fn expand(
        &mut self,
        mi: usize,
        prefix: &str,
        bind: HashMap<Symbol, Symbol>,
        stack: &mut Vec<usize>,
    ) -> Result<(), BlifError> {
        if stack.contains(&mi) {
            return Err(diag(
                self.file.models[mi].line,
                format!(
                    "recursive instantiation of model `{}`",
                    self.file.models[mi].name
                ),
            ));
        }
        stack.push(mi);
        self.ensure_tts(mi)?;
        let file = self.file;
        let model = &file.models[mi];
        let mut map = bind;
        let mut names_seen = 0usize;
        let mut inst_counts: HashMap<Symbol, usize> = HashMap::new();
        for cmd in &model.commands {
            match cmd {
                Command::Names(n) => {
                    let tt = self.tts[mi].as_ref().expect("ensured")[names_seen].clone();
                    names_seen += 1;
                    let inputs = n
                        .inputs
                        .iter()
                        .map(|&s| self.flat_sym(&mut map, prefix, s))
                        .collect();
                    let output = self.flat_sym(&mut map, prefix, n.output);
                    self.flat.gates.push(FlatGate {
                        inputs,
                        output,
                        tt,
                        line: n.line,
                    });
                }
                Command::Conn { from, to, line } => {
                    let from = self.flat_sym(&mut map, prefix, *from);
                    let to = self.flat_sym(&mut map, prefix, *to);
                    self.flat.gates.push(FlatGate {
                        inputs: vec![from],
                        output: to,
                        tt: TruthTable::buf(),
                        line: *line,
                    });
                }
                Command::Latch(l) => {
                    let input = self.flat_sym(&mut map, prefix, l.input);
                    let output = self.flat_sym(&mut map, prefix, l.output);
                    self.flat.latches.push(FlatLatch {
                        input,
                        output,
                        init: l.init.map_or(Bit::X, |v| v.to_bit()),
                        line: l.line,
                    });
                }
                Command::Gate(g) => {
                    let cell_name = file.interner.resolve(g.cell);
                    let Some(cell) = lookup_cell(cell_name) else {
                        return Err(diag(g.line, format!("unknown library cell `{cell_name}`")));
                    };
                    let mut output = None;
                    let mut input_actual: Vec<Option<Symbol>> = vec![None; cell.inputs.len()];
                    for &(formal, actual) in &g.conns {
                        let pin = file.interner.resolve(formal);
                        if let Some(k) =
                            cell.inputs.iter().position(|p| p.eq_ignore_ascii_case(pin))
                        {
                            input_actual[k] = Some(actual);
                        } else if pin.eq_ignore_ascii_case(cell.output) || is_output_pin(pin) {
                            if output.is_some() {
                                return Err(diag(g.line, "multiple output pins on .gate"));
                            }
                            output = Some(actual);
                        } else {
                            return Err(diag(
                                g.line,
                                format!("cell `{}` has no pin `{pin}`", cell.name),
                            ));
                        }
                    }
                    let Some(output) = output else {
                        return Err(diag(g.line, "missing output pin on .gate"));
                    };
                    let mut inputs = Vec::with_capacity(cell.inputs.len());
                    for (k, a) in input_actual.into_iter().enumerate() {
                        let Some(a) = a else {
                            return Err(diag(
                                g.line,
                                format!(
                                    "unconnected input pin `{}` on `{}`",
                                    cell.inputs[k], cell.name
                                ),
                            ));
                        };
                        inputs.push(self.flat_sym(&mut map, prefix, a));
                    }
                    let output = self.flat_sym(&mut map, prefix, output);
                    self.flat.gates.push(FlatGate {
                        inputs,
                        output,
                        tt: cell.tt.clone(),
                        line: g.line,
                    });
                }
                Command::Mlatch(ml) => {
                    let cell_name = file.interner.resolve(ml.cell);
                    let Some(cell) = lookup_latch_cell(cell_name) else {
                        return Err(diag(ml.line, format!("unknown latch cell `{cell_name}`")));
                    };
                    let (mut d, mut q) = (None, None);
                    for &(formal, actual) in &ml.conns {
                        let pin = file.interner.resolve(formal);
                        if pin.eq_ignore_ascii_case(cell.d) {
                            d = Some(actual);
                        } else if pin.eq_ignore_ascii_case(cell.q) {
                            q = Some(actual);
                        } else {
                            return Err(diag(
                                ml.line,
                                format!("latch cell `{cell_name}` has no pin `{pin}`"),
                            ));
                        }
                    }
                    let (Some(d), Some(q)) = (d, q) else {
                        return Err(diag(ml.line, ".mlatch needs both d= and q= pins"));
                    };
                    let input = self.flat_sym(&mut map, prefix, d);
                    let output = self.flat_sym(&mut map, prefix, q);
                    self.flat.latches.push(FlatLatch {
                        input,
                        output,
                        init: ml.init.map_or(Bit::X, |v| v.to_bit()),
                        line: ml.line,
                    });
                }
                Command::Subckt(s) => {
                    let child_name = file.interner.resolve(s.model);
                    let Some(&ci) = self.model_idx.get(child_name) else {
                        return Err(diag(s.line, format!("unknown model `{child_name}`")));
                    };
                    let child = &file.models[ci];
                    if child.blackbox {
                        return Err(diag(
                            s.line,
                            format!("cannot flatten instantiation of blackbox `{child_name}`"),
                        ));
                    }
                    let mut child_bind: HashMap<Symbol, Symbol> = HashMap::new();
                    for &(formal, actual) in &s.conns {
                        if !child.inputs.contains(&formal) && !child.outputs.contains(&formal) {
                            return Err(diag(
                                s.line,
                                format!(
                                    "`{}` is not a port of model `{child_name}`",
                                    file.interner.resolve(formal)
                                ),
                            ));
                        }
                        let flat = self.flat_sym(&mut map, prefix, actual);
                        if child_bind.insert(formal, flat).is_some() {
                            return Err(diag(
                                s.line,
                                format!("port `{}` bound twice", file.interner.resolve(formal)),
                            ));
                        }
                    }
                    for &pin in &child.inputs {
                        if !child_bind.contains_key(&pin) {
                            return Err(diag(
                                s.line,
                                format!(
                                    "unconnected input `{}` of model `{child_name}`",
                                    file.interner.resolve(pin)
                                ),
                            ));
                        }
                    }
                    let ord = inst_counts.entry(s.model).or_insert(0);
                    let child_prefix = format!("{prefix}{child_name}${ord}.");
                    *ord += 1;
                    self.expand(ci, &child_prefix, child_bind, stack)?;
                }
                Command::Kiss(k) => {
                    // `flatten` lowers KISS blocks before expansion; one
                    // surviving here means the caller skipped lowering.
                    return Err(diag(k.line, "unlowered KISS block at link time"));
                }
                Command::Attr { .. } | Command::Directive { .. } => {}
            }
        }
        stack.pop();
        Ok(())
    }
}

/// Truth table of a `.names` block (on-set or off-set cubes).
fn names_tt(block: &Names) -> Result<TruthTable, BlifError> {
    let n = block.inputs.len();
    if block.num_cubes() == 0 {
        return Ok(TruthTable::const_zero(n));
    }
    let value = block.values[0];
    if block.values.iter().any(|&v| v != value) {
        return Err(diag(block.line, "mixed on-set/off-set cubes"));
    }
    let covered = |r: usize| {
        (0..block.num_cubes()).any(|ci| {
            let (pattern, _) = block.cube(ci);
            pattern.iter().enumerate().all(|(i, &ch)| match ch {
                b'0' => r & (1 << i) == 0,
                b'1' => r & (1 << i) != 0,
                _ => true,
            })
        })
    };
    Ok(TruthTable::from_fn(n, |r| {
        if value == b'1' {
            covered(r)
        } else {
            !covered(r)
        }
    }))
}

fn flatten_nokiss(file: &BlifFile, opts: &LinkOptions) -> Result<Circuit, BlifError> {
    let root_idx = match &opts.root {
        Some(name) => match file.models.iter().position(|m| &m.name == name) {
            Some(i) => i,
            None => {
                return Err(Diag::new(0, 0, format!("link root model `{name}` not found")).into())
            }
        },
        None => match file.models.iter().position(|m| !m.blackbox) {
            Some(i) => i,
            None => return Err(Diag::new(0, 0, "no non-blackbox model to link").into()),
        },
    };
    let mut linker = Linker::new(file);
    let mut stack = Vec::new();
    linker.expand(root_idx, "", HashMap::new(), &mut stack)?;
    build(file, root_idx, linker.flat)
}

enum Drv {
    Pi(NodeId),
    Gate(usize),
    Latch(usize),
}

/// Builds the retiming-graph circuit from flat gate/latch lists —
/// semantics ported from the old single-model reader (latch folding,
/// `$g` suffixes for PO-name collisions).
fn build(file: &BlifFile, root_idx: usize, mut flat: Flat) -> Result<Circuit, BlifError> {
    let root = &file.models[root_idx];
    let mut c = Circuit::new(root.name.clone());

    let pi_syms: Vec<Symbol> = root
        .inputs
        .iter()
        .map(|&s| flat.names.intern(file.interner.resolve(s)))
        .collect();
    let po_syms: Vec<Symbol> = root
        .outputs
        .iter()
        .map(|&s| flat.names.intern(file.interner.resolve(s)))
        .collect();
    let po_set: std::collections::HashSet<Symbol> = po_syms.iter().copied().collect();

    let mut drivers: Vec<Option<Drv>> = Vec::new();
    drivers.resize_with(flat.names.len(), || None);

    for (&sym, &local) in pi_syms.iter().zip(root.inputs.iter()) {
        let name = file.interner.resolve(local);
        let node_name = if po_set.contains(&sym) {
            format!("{name}$g")
        } else {
            name.to_string()
        };
        if drivers[sym.index()].is_some() {
            return Err(diag(root.line, format!("duplicate input `{name}`")));
        }
        drivers[sym.index()] = Some(Drv::Pi(c.add_input(sanitize(&node_name))?));
    }

    let mut gate_nodes: Vec<NodeId> = Vec::with_capacity(flat.gates.len());
    for (gi, g) in flat.gates.iter().enumerate() {
        let sig = flat.names.resolve(g.output);
        match drivers[g.output.index()] {
            Some(Drv::Pi(_)) => {
                return Err(BlifError::Build(NetlistError::Parse {
                    line: g.line as usize,
                    message: format!("signal `{sig}` driven by both .inputs and .names"),
                }));
            }
            Some(_) => {
                return Err(BlifError::Build(NetlistError::Parse {
                    line: g.line as usize,
                    message: format!("signal `{sig}` has multiple drivers"),
                }));
            }
            None => {}
        }
        let mut node_name = if po_set.contains(&g.output) {
            format!("{}$g", sanitize(sig))
        } else {
            sanitize(sig)
        };
        while c.find(&node_name).is_some() {
            node_name.push_str("$g");
        }
        let id = c.add_gate(node_name, g.tt.clone())?;
        gate_nodes.push(id);
        drivers[g.output.index()] = Some(Drv::Gate(gi));
    }

    for (li, l) in flat.latches.iter().enumerate() {
        let sig = flat.names.resolve(l.output);
        match drivers[l.output.index()] {
            Some(Drv::Pi(_) | Drv::Gate(_)) => {
                return Err(BlifError::Build(NetlistError::Parse {
                    line: l.line as usize,
                    message: format!("latch output `{sig}` shadows an existing driver"),
                }));
            }
            Some(Drv::Latch(_)) => {
                return Err(BlifError::Build(NetlistError::Parse {
                    line: l.line as usize,
                    message: format!("latch output `{sig}` has multiple drivers"),
                }));
            }
            None => {}
        }
        drivers[l.output.index()] = Some(Drv::Latch(li));
    }

    // Resolves a signal to its driving node plus the FF chain
    // (source→sink order) accumulated through latches. Iterative — the
    // step guard bounds latch-only cycles.
    let resolve = |sym: Symbol, use_line: u32| -> Result<(NodeId, Vec<Bit>), BlifError> {
        let mut chain: Vec<Bit> = Vec::new();
        let mut cur = sym;
        let mut line = use_line;
        let mut steps = 0usize;
        loop {
            match drivers.get(cur.index()).and_then(|d| d.as_ref()) {
                Some(Drv::Pi(n)) => {
                    chain.reverse();
                    return Ok((*n, chain));
                }
                Some(Drv::Gate(gi)) => {
                    chain.reverse();
                    return Ok((gate_nodes[*gi], chain));
                }
                Some(Drv::Latch(li)) => {
                    let l = &flat.latches[*li];
                    chain.push(l.init);
                    line = l.line;
                    cur = l.input;
                    steps += 1;
                    if steps > flat.latches.len() {
                        return Err(BlifError::Build(NetlistError::Parse {
                            line: line as usize,
                            message: format!(
                                "latch cycle through `{}` with no logic",
                                flat.names.resolve(sym)
                            ),
                        }));
                    }
                }
                None => {
                    return Err(BlifError::Build(NetlistError::UndefinedSignal {
                        signal: flat.names.resolve(cur).to_string(),
                        line: line as usize,
                    }))
                }
            }
        }
    };

    for (gi, g) in flat.gates.iter().enumerate() {
        for &sig in &g.inputs {
            let (src, chain) = resolve(sig, g.line)?;
            c.connect(src, gate_nodes[gi], chain)?;
        }
    }
    for (k, &sym) in po_syms.iter().enumerate() {
        let name = file.interner.resolve(root.outputs[k]);
        let line = root.output_lines.get(k).copied().unwrap_or(root.line);
        let po = c.add_output(sanitize(name))?;
        let (src, chain) = resolve(sym, line)?;
        c.connect(src, po, chain)?;
    }
    Ok(c)
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|ch| if ch.is_whitespace() { '_' } else { ch })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_str;

    fn read(text: &str) -> Circuit {
        flatten(&parse_str(text).unwrap(), &LinkOptions::default()).unwrap()
    }

    #[test]
    fn flat_model_matches_old_reader() {
        let src = "\
.model counter
.inputs en
.outputs q
.names en state q
01 1
10 1
.latch q state 0
.end
";
        let c = read(src);
        let old = netlist::parse_blif(src).unwrap();
        assert!(crate::compare::structural_diff(&old, &c).is_none());
    }

    #[test]
    fn subckt_flattens_with_prefixes() {
        let src = "\
.model top
.inputs a b
.outputs z
.subckt and x=a y=b o=t
.subckt and x=t y=a o=z
.end
.model and
.inputs x y
.outputs o
.names x y o
11 1
.end
";
        let c = read(src);
        assert_eq!(c.num_gates(), 2);
        assert!(
            c.find("t").is_some(),
            "bound child output keeps parent name"
        );
        netlist::validate(&c).unwrap();
    }

    #[test]
    fn nested_hierarchy_and_latch_across_boundary() {
        let src = "\
.model top
.inputs d
.outputs q
.subckt reg din=d dout=q
.end
.model reg
.inputs din
.outputs dout
.latch t dout 1
.names din t
1 1
.end
";
        let c = read(src);
        assert_eq!(c.ff_count_shared(), 1);
        let po = c.outputs()[0];
        let e = c.node(po).fanin()[0];
        assert_eq!(c.edge(e).ffs(), &[Bit::One]);
    }

    #[test]
    fn gate_and_mlatch_and_conn() {
        let src = "\
.model g
.inputs a b
.outputs z
.gate nand2 a=a b=b o=t
.mlatch dff d=t q=r NIL 0
.conn r w
.names w z
0 1
.end
";
        let c = read(src);
        assert_eq!(c.ff_count_shared(), 1);
        netlist::validate(&c).unwrap();
        // nand(a,b) registered (init 0), buffered, inverted: z = NOT w.
        let mut sim = netlist::Simulator::new(&c).unwrap();
        // Cycle 1: register holds 0 → w=0 → z=1.
        assert_eq!(sim.step(&[Bit::One, Bit::One]).unwrap(), vec![Bit::One]);
        // Cycle 2: register latched nand(1,1)=0 → z=1.
        assert_eq!(sim.step(&[Bit::Zero, Bit::One]).unwrap(), vec![Bit::One]);
        // Cycle 3: register latched nand(0,1)=1 → z=0.
        assert_eq!(sim.step(&[Bit::Zero, Bit::Zero]).unwrap(), vec![Bit::Zero]);
    }

    #[test]
    fn kiss_block_lowers_to_logic() {
        let src = "\
.model toggle
.inputs t
.outputs q
.start_kiss
.i 1
.o 1
.s 2
.r OFF
1 OFF ON  1
0 OFF OFF 0
- ON  OFF 0
.end_kiss
.end
";
        let c = read(src);
        assert!(c.num_gates() > 0);
        assert!(c.ff_count_shared() >= 1);
        let mut sim = netlist::Simulator::new(&c).unwrap();
        assert_eq!(sim.step(&[Bit::One]).unwrap(), vec![Bit::One]); // OFF --1/1--> ON
        assert_eq!(sim.step(&[Bit::One]).unwrap(), vec![Bit::Zero]); // ON --- /0--> OFF
        assert_eq!(sim.step(&[Bit::Zero]).unwrap(), vec![Bit::Zero]); // OFF --0/0--> OFF
    }

    #[test]
    fn unknown_model_and_unbound_pin_diagnosed() {
        let e = flatten(
            &parse_str(".model t\n.inputs a\n.outputs z\n.subckt ghost x=a o=z\n.end\n").unwrap(),
            &LinkOptions::default(),
        )
        .unwrap_err();
        assert!(e.to_string().contains("unknown model"), "{e}");

        let e = flatten(
            &parse_str(
                ".model t\n.inputs a\n.outputs z\n.subckt and x=a o=z\n.end\n\
                 .model and\n.inputs x y\n.outputs o\n.names x y o\n11 1\n.end\n",
            )
            .unwrap(),
            &LinkOptions::default(),
        )
        .unwrap_err();
        assert!(e.to_string().contains("unconnected input `y`"), "{e}");
    }

    #[test]
    fn recursion_rejected() {
        let src = "\
.model a
.inputs x
.outputs y
.subckt a x=x y=y
.end
";
        let e = flatten(&parse_str(src).unwrap(), &LinkOptions::default()).unwrap_err();
        assert!(e.to_string().contains("recursive"), "{e}");
    }

    #[test]
    fn blackbox_instantiation_rejected() {
        let src = "\
.model t
.inputs a
.outputs z
.subckt bb p=a q=z
.end
.model bb
.inputs p
.outputs q
.blackbox
.end
";
        let e = flatten(&parse_str(src).unwrap(), &LinkOptions::default()).unwrap_err();
        assert!(e.to_string().contains("blackbox"), "{e}");
    }

    #[test]
    fn root_selection() {
        let src = "\
.model bb
.inputs p
.outputs q
.blackbox
.end
.model real
.inputs a
.outputs z
.names a z
1 1
.end
";
        let f = parse_str(src).unwrap();
        let c = flatten(&f, &LinkOptions::default()).unwrap();
        assert_eq!(c.name(), "real");
        let c2 = flatten(
            &f,
            &LinkOptions {
                root: Some("real".into()),
                ..LinkOptions::default()
            },
        )
        .unwrap();
        assert_eq!(c2.name(), "real");
        assert!(flatten(
            &f,
            &LinkOptions {
                root: Some("nope".into()),
                ..LinkOptions::default()
            }
        )
        .is_err());
    }

    #[test]
    fn undefined_signal_errors_stay_stable() {
        let src = ".model u\n.inputs a\n.outputs z\n.names ghost z\n1 1\n.end\n";
        match flatten(&parse_str(src).unwrap(), &LinkOptions::default()) {
            Err(BlifError::Build(NetlistError::UndefinedSignal { signal, line })) => {
                assert_eq!(signal, "ghost");
                assert_eq!(line, 4);
            }
            other => panic!("expected UndefinedSignal, got {other:?}"),
        }
        let src = ".model u\n.inputs a\n.outputs z\n.names q z\n1 1\n.latch ghost q 0\n.end\n";
        match flatten(&parse_str(src).unwrap(), &LinkOptions::default()) {
            Err(BlifError::Build(NetlistError::UndefinedSignal { signal, line })) => {
                assert_eq!(signal, "ghost");
                assert_eq!(line, 6);
            }
            other => panic!("expected UndefinedSignal, got {other:?}"),
        }
    }

    #[test]
    fn latch_only_cycle_diagnosed() {
        let src = ".model c\n.inputs a\n.outputs z\n.latch z z 0\n.end\n";
        let e = flatten(&parse_str(src).unwrap(), &LinkOptions::default()).unwrap_err();
        assert!(e.to_string().contains("latch cycle"), "{e}");
    }
}
