//! BLIF writing: round-trips everything the reader accepts, and
//! converts retiming-graph circuits back into model ASTs.
//!
//! [`model_from_circuit`] is a faithful port of the old
//! `netlist::write_blif` serialisation (shared-vs-per-edge latch chain
//! materialisation, on-set cube emission, PO buffers), producing an AST
//! [`Model`] instead of text — which is what both the KISS lowering and
//! the writer itself build on. For circuits with at least one PI and
//! PO, `write_circuit` is byte-identical to `netlist::write_blif`.

use crate::ast::*;
use crate::intern::{Interner, Symbol};
use netlist::{Bit, Circuit};
use std::fmt::Write as _;

/// Serialises a whole parsed file back to BLIF text.
pub fn write_file(file: &BlifFile) -> String {
    let mut out = String::new();
    for model in &file.models {
        write_model(model, &file.interner, &mut out);
    }
    out
}

fn push_syms(out: &mut String, interner: &Interner, kw: &str, syms: &[Symbol]) {
    if syms.is_empty() {
        return;
    }
    out.push_str(kw);
    for &s in syms {
        out.push(' ');
        out.push_str(interner.resolve(s));
    }
    out.push('\n');
}

/// Serialises one model.
pub fn write_model(model: &Model, interner: &Interner, out: &mut String) {
    let _ = writeln!(out, ".model {}", model.name);
    push_syms(out, interner, ".inputs", &model.inputs);
    push_syms(out, interner, ".outputs", &model.outputs);
    push_syms(out, interner, ".clock", &model.clocks);
    if model.blackbox {
        out.push_str(".blackbox\n");
    }
    for cmd in &model.commands {
        match cmd {
            Command::Names(n) => {
                // `.names {inputs} {output}` — constant blocks keep the
                // old writer's double space (empty input join), so
                // `write_circuit` stays byte-identical with it.
                out.push_str(".names ");
                for (i, &s) in n.inputs.iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    out.push_str(interner.resolve(s));
                }
                out.push(' ');
                out.push_str(interner.resolve(n.output));
                out.push('\n');
                for ci in 0..n.num_cubes() {
                    let (pattern, value) = n.cube(ci);
                    if !pattern.is_empty() {
                        out.push_str(std::str::from_utf8(pattern).expect("cube is ASCII"));
                        out.push(' ');
                    }
                    out.push(value as char);
                    out.push('\n');
                }
            }
            Command::Latch(l) => {
                let _ = write!(
                    out,
                    ".latch {} {}",
                    interner.resolve(l.input),
                    interner.resolve(l.output)
                );
                if let Some(ty) = l.ty {
                    let ctrl = l.control.map_or("NIL", |c| interner.resolve(c));
                    let _ = write!(out, " {} {ctrl}", ty.as_str());
                }
                if let Some(init) = l.init {
                    let _ = write!(out, " {}", init.as_char());
                }
                out.push('\n');
            }
            Command::Subckt(s) => {
                let _ = write!(out, ".subckt {}", interner.resolve(s.model));
                for &(f, a) in &s.conns {
                    let _ = write!(out, " {}={}", interner.resolve(f), interner.resolve(a));
                }
                out.push('\n');
            }
            Command::Gate(g) => {
                let _ = write!(out, ".gate {}", interner.resolve(g.cell));
                for &(f, a) in &g.conns {
                    let _ = write!(out, " {}={}", interner.resolve(f), interner.resolve(a));
                }
                out.push('\n');
            }
            Command::Mlatch(ml) => {
                let _ = write!(out, ".mlatch {}", interner.resolve(ml.cell));
                for &(f, a) in &ml.conns {
                    let _ = write!(out, " {}={}", interner.resolve(f), interner.resolve(a));
                }
                match (ml.control, ml.init) {
                    (Some(c), _) => {
                        let _ = write!(out, " {}", interner.resolve(c));
                    }
                    (None, Some(_)) => out.push_str(" NIL"),
                    (None, None) => {}
                }
                if let Some(init) = ml.init {
                    let _ = write!(out, " {}", init.as_char());
                }
                out.push('\n');
            }
            Command::Kiss(k) => {
                out.push_str(".start_kiss\n");
                out.push_str(&k.text);
                out.push_str(".end_kiss\n");
            }
            Command::Attr { kind, args, .. } => {
                out.push_str(kind.as_str());
                for a in args {
                    out.push(' ');
                    out.push_str(a);
                }
                out.push('\n');
            }
            Command::Conn { from, to, .. } => {
                let _ = writeln!(
                    out,
                    ".conn {} {}",
                    interner.resolve(*from),
                    interner.resolve(*to)
                );
            }
            Command::Directive { name, args, .. } => {
                out.push('.');
                out.push_str(name);
                for a in args {
                    out.push(' ');
                    out.push_str(a);
                }
                out.push('\n');
            }
        }
    }
    out.push_str(".end\n");
}

fn init_val(b: Bit) -> InitVal {
    match b {
        Bit::Zero => InitVal::Zero,
        Bit::One => InitVal::One,
        Bit::X => InitVal::Unknown,
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|ch| if ch.is_whitespace() { '_' } else { ch })
        .collect()
}

/// Converts a circuit into a single flat model, re-materialising FF
/// chains as latches — the AST equivalent of `netlist::write_blif`.
pub fn model_from_circuit(c: &Circuit, interner: &mut Interner, line: u32) -> Model {
    let mut m = Model::new(sanitize(c.name()), line);
    for &v in c.inputs() {
        m.inputs.push(interner.intern(&sanitize(c.node(v).name())));
    }
    for &v in c.outputs() {
        m.outputs.push(interner.intern(&sanitize(c.node(v).name())));
        m.output_lines.push(line);
    }

    // Latch chains: shared per driver when the fanout chains agree on
    // their common prefix, per-edge otherwise.
    let mut edge_signal: Vec<Option<Symbol>> = vec![None; c.num_edges()];
    let mut latches: Vec<Command> = Vec::new();
    for v in c.node_ids() {
        let node = c.node(v);
        if node.is_output() {
            continue;
        }
        let base = sanitize(node.name());
        let fanout = node.fanout();
        let chains: Vec<&[Bit]> = fanout.iter().map(|&e| c.edge(e).ffs()).collect();
        let maxw = chains.iter().map(|ch| ch.len()).max().unwrap_or(0);
        let mut shared_ok = true;
        let mut merged: Vec<Bit> = vec![Bit::X; maxw];
        for ch in &chains {
            for (i, &b) in ch.iter().enumerate() {
                match merged[i].merge(b) {
                    Some(mb) => merged[i] = mb,
                    None => shared_ok = false,
                }
            }
        }
        if shared_ok {
            for (i, &init) in merged.iter().enumerate() {
                let prev = if i == 0 {
                    base.clone()
                } else {
                    format!("{base}@{i}")
                };
                latches.push(Command::Latch(Latch {
                    input: interner.intern(&prev),
                    output: interner.intern(&format!("{base}@{}", i + 1)),
                    ty: None,
                    control: None,
                    init: Some(init_val(init)),
                    line,
                }));
            }
            for &e in fanout {
                let w = c.edge(e).weight();
                let sig = if w == 0 {
                    base.clone()
                } else {
                    format!("{base}@{w}")
                };
                edge_signal[e.index()] = Some(interner.intern(&sig));
            }
        } else {
            for &e in fanout {
                let ffs = c.edge(e).ffs();
                let mut prev = base.clone();
                for (i, &init) in ffs.iter().enumerate() {
                    let next = format!("{base}@e{}@{}", e.index(), i + 1);
                    latches.push(Command::Latch(Latch {
                        input: interner.intern(&prev),
                        output: interner.intern(&next),
                        ty: None,
                        control: None,
                        init: Some(init_val(init)),
                        line,
                    }));
                    prev = next;
                }
                edge_signal[e.index()] = Some(interner.intern(&prev));
            }
        }
    }
    m.commands.extend(latches);

    // Gates: on-set cubes (one per true row), constants as 0/1-cube
    // blocks.
    for v in c.gate_ids() {
        let node = c.node(v);
        let tt = node.function().expect("gate");
        let inputs: Vec<Symbol> = node
            .fanin()
            .iter()
            .map(|&e| edge_signal[e.index()].expect("driver seen"))
            .collect();
        let output = interner.intern(&sanitize(node.name()));
        let mut names = Names {
            inputs,
            output,
            pattern_blob: Vec::new(),
            values: Vec::new(),
            line,
        };
        if tt.num_inputs() == 0 {
            if tt.eval_row(0) {
                names.values.push(b'1');
            }
        } else {
            for r in 0..tt.num_rows() {
                if tt.eval_row(r) {
                    for i in 0..tt.num_inputs() {
                        names
                            .pattern_blob
                            .push(if r & (1 << i) != 0 { b'1' } else { b'0' });
                    }
                    names.values.push(b'1');
                }
            }
        }
        m.commands.push(Command::Names(names));
    }

    // PO buffers where the driving signal name differs from the PO name.
    for &po in c.outputs() {
        let node = c.node(po);
        let e = node.fanin()[0];
        let sig = edge_signal[e.index()].expect("driver seen");
        let name = interner.intern(&sanitize(node.name()));
        if sig != name {
            m.commands.push(Command::Names(Names {
                inputs: vec![sig],
                output: name,
                pattern_blob: vec![b'1'],
                values: vec![b'1'],
                line,
            }));
        }
    }
    m
}

/// Wraps a circuit as a one-model [`BlifFile`].
pub fn from_circuit(c: &Circuit) -> BlifFile {
    let mut interner = Interner::new();
    let model = model_from_circuit(c, &mut interner, 1);
    BlifFile {
        models: vec![model],
        interner,
    }
}

/// Serialises a circuit to BLIF text through the AST writer.
pub fn write_circuit(c: &Circuit) -> String {
    write_file(&from_circuit(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_str;
    use netlist::TruthTable;

    #[test]
    fn write_circuit_matches_old_writer() {
        // Shared chain, inconsistent chain, PO buffer — all paths.
        let mut c = Circuit::new("taps");
        let a = c.add_input("a").unwrap();
        let g1 = c.add_gate("g1", TruthTable::buf()).unwrap();
        let g2 = c.add_gate("g2", TruthTable::xor(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g1, vec![Bit::Zero, Bit::One]).unwrap();
        c.connect(a, g2, vec![Bit::Zero]).unwrap();
        c.connect(g1, g2, vec![]).unwrap();
        c.connect(g2, o, vec![]).unwrap();
        assert_eq!(write_circuit(&c), netlist::write_blif(&c));

        let mut d = Circuit::new("conflict");
        let a = d.add_input("a").unwrap();
        let g1 = d.add_gate("g1", TruthTable::buf()).unwrap();
        let g2 = d.add_gate("g2", TruthTable::buf()).unwrap();
        let o1 = d.add_output("o1").unwrap();
        let o2 = d.add_output("o2").unwrap();
        d.connect(a, g1, vec![Bit::Zero]).unwrap();
        d.connect(a, g2, vec![Bit::One]).unwrap();
        d.connect(g1, o1, vec![]).unwrap();
        d.connect(g2, o2, vec![]).unwrap();
        assert_eq!(write_circuit(&d), netlist::write_blif(&d));
    }

    #[test]
    fn file_roundtrip_is_a_fixed_point() {
        let src = "\
.model top
.inputs a b
.outputs z
.clock clk
.attr src \"top.v:3\"
.names a b t
11 1
.latch t u re clk 0
.latch t v 1
.latch t w
.subckt leaf x=u y=z
.gate nand2 a=v b=w o=dead
.mlatch dff d=a q=dq NIL 1
.conn dq dead2
.delay a 3
.end
.model leaf
.inputs x
.outputs y
.cname buf0
.names x y
1 1
.end
.model bb
.inputs p
.outputs q
.blackbox
.end
";
        let f1 = parse_str(src).unwrap();
        let t1 = write_file(&f1);
        let f2 = parse_str(&t1).unwrap();
        let t2 = write_file(&f2);
        assert_eq!(t1, t2);
        // Everything survived: count commands per model.
        assert_eq!(f1.models.len(), f2.models.len());
        for (m1, m2) in f1.models.iter().zip(f2.models.iter()) {
            assert_eq!(m1.commands.len(), m2.commands.len(), "model {}", m1.name);
        }
    }

    #[test]
    fn kiss_roundtrips_verbatim() {
        let src = ".model f\n.inputs i\n.outputs o\n.start_kiss\n.i 1\n.o 1\n.s 1\n.r A\n1 A A 1\n.end_kiss\n.end\n";
        let f = parse_str(src).unwrap();
        let t = write_file(&f);
        assert!(
            t.contains(".start_kiss\n.i 1\n.o 1\n.s 1\n.r A\n1 A A 1\n.end_kiss\n"),
            "{t}"
        );
        let f2 = parse_str(&t).unwrap();
        assert_eq!(write_file(&f2), t);
    }
}
