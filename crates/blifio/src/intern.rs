//! A compact name interner.
//!
//! Every signal/model/cell name in a parsed BLIF file is stored exactly
//! once in a single append-only byte arena; the rest of the front-end
//! passes 4-byte [`Symbol`]s around. This is what keeps memory
//! proportional to the *netlist*, not the file: raw text is scanned in
//! fixed-size chunks and only distinct names survive.

use std::collections::HashMap;

/// Handle to an interned name (index into the arena's span table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The span-table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Append-only string arena with hash-consed lookup.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    arena: String,
    spans: Vec<(u32, u32)>,
    // FNV hash of the name → candidate symbols (collisions resolved by
    // comparing arena slices; no duplicate `String` keys are kept).
    map: HashMap<u64, Vec<u32>>,
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Interns `name`, returning its (stable) symbol.
    pub fn intern(&mut self, name: &str) -> Symbol {
        let h = fnv1a(name);
        if let Some(cands) = self.map.get(&h) {
            for &id in cands {
                let (start, len) = self.spans[id as usize];
                if &self.arena[start as usize..(start + len) as usize] == name {
                    return Symbol(id);
                }
            }
        }
        let start = u32::try_from(self.arena.len()).expect("arena < 4 GiB");
        let len = u32::try_from(name.len()).expect("name < 4 GiB");
        self.arena.push_str(name);
        let id = u32::try_from(self.spans.len()).expect("< 2^32 names");
        self.spans.push((start, len));
        self.map.entry(h).or_default().push(id);
        Symbol(id)
    }

    /// The text of an interned symbol.
    pub fn resolve(&self, sym: Symbol) -> &str {
        let (start, len) = self.spans[sym.index()];
        &self.arena[start as usize..(start + len) as usize]
    }

    /// Number of distinct names.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no name has been interned.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total bytes of distinct name text held.
    pub fn arena_bytes(&self) -> usize {
        self.arena.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_and_resolves() {
        let mut i = Interner::new();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        let a2 = i.intern("alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "alpha");
        assert_eq!(i.resolve(b), "beta");
        assert_eq!(i.len(), 2);
        assert_eq!(i.arena_bytes(), "alphabeta".len());
    }

    #[test]
    fn many_names_stay_distinct() {
        let mut i = Interner::new();
        let syms: Vec<Symbol> = (0..10_000).map(|n| i.intern(&format!("s{n}"))).collect();
        for (n, &s) in syms.iter().enumerate() {
            assert_eq!(i.resolve(s), format!("s{n}"));
        }
        assert_eq!(i.len(), 10_000);
    }
}
