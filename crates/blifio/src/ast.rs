//! Parsed BLIF representation: models and their command streams.
//!
//! Commands keep their source order and enough verbatim detail (cube
//! characters, latch init digits, attribute tokens) for the writer to
//! round-trip everything the reader accepted. Names are interned
//! [`Symbol`]s — the raw text is never held whole.

use crate::intern::{Interner, Symbol};
use netlist::Bit;

/// A latch initial value as written (`0`, `1`, `2` = don't care,
/// `3` = unknown). Absence is represented by `Option<InitVal>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitVal {
    /// `0`
    Zero,
    /// `1`
    One,
    /// `2` — don't care.
    DontCare,
    /// `3` — unknown.
    Unknown,
}

impl InitVal {
    /// Parses one init digit.
    pub fn from_token(tok: &str) -> Option<InitVal> {
        match tok {
            "0" => Some(InitVal::Zero),
            "1" => Some(InitVal::One),
            "2" => Some(InitVal::DontCare),
            "3" => Some(InitVal::Unknown),
            _ => None,
        }
    }

    /// The digit as written.
    pub fn as_char(self) -> char {
        match self {
            InitVal::Zero => '0',
            InitVal::One => '1',
            InitVal::DontCare => '2',
            InitVal::Unknown => '3',
        }
    }

    /// Three-valued initial state (`2`/`3` both map to X, as in the old
    /// reader).
    pub fn to_bit(self) -> Bit {
        match self {
            InitVal::Zero => Bit::Zero,
            InitVal::One => Bit::One,
            InitVal::DontCare | InitVal::Unknown => Bit::X,
        }
    }
}

/// Latch trigger type (1992 spec §latch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatchType {
    /// Falling edge.
    Fe,
    /// Rising edge.
    Re,
    /// Active high.
    Ah,
    /// Active low.
    Al,
    /// Asynchronous.
    As,
}

impl LatchType {
    /// Parses a latch-type token.
    pub fn from_token(tok: &str) -> Option<LatchType> {
        match tok {
            "fe" => Some(LatchType::Fe),
            "re" => Some(LatchType::Re),
            "ah" => Some(LatchType::Ah),
            "al" => Some(LatchType::Al),
            "as" => Some(LatchType::As),
            _ => None,
        }
    }

    /// The keyword as written.
    pub fn as_str(self) -> &'static str {
        match self {
            LatchType::Fe => "fe",
            LatchType::Re => "re",
            LatchType::Ah => "ah",
            LatchType::Al => "al",
            LatchType::As => "as",
        }
    }
}

/// A `.names` logic block with verbatim cubes.
///
/// Cubes are stored packed: `pattern_blob` holds `inputs.len()` bytes
/// per cube (`0`/`1`/`-`), `values` one byte per cube (`0`/`1`).
#[derive(Debug, Clone)]
pub struct Names {
    /// Input signals (possibly empty — constant).
    pub inputs: Vec<Symbol>,
    /// Output signal.
    pub output: Symbol,
    /// Packed cube patterns.
    pub pattern_blob: Vec<u8>,
    /// Per-cube output value bytes.
    pub values: Vec<u8>,
    /// Source line of the `.names` keyword.
    pub line: u32,
}

impl Names {
    /// Number of cubes.
    pub fn num_cubes(&self) -> usize {
        self.values.len()
    }

    /// Cube `i` as (pattern bytes, value byte).
    pub fn cube(&self, i: usize) -> (&[u8], u8) {
        let w = self.inputs.len();
        (&self.pattern_blob[i * w..(i + 1) * w], self.values[i])
    }
}

/// A `.latch` declaration.
#[derive(Debug, Clone)]
pub struct Latch {
    /// Data input signal.
    pub input: Symbol,
    /// Latch output signal.
    pub output: Symbol,
    /// Optional trigger type.
    pub ty: Option<LatchType>,
    /// Optional clock/control signal (`NIL` parses as `None`).
    pub control: Option<Symbol>,
    /// Optional initial value.
    pub init: Option<InitVal>,
    /// Source line.
    pub line: u32,
}

/// A `.subckt` instantiation: formal=actual bindings in source order.
#[derive(Debug, Clone)]
pub struct Subckt {
    /// The instantiated model's name.
    pub model: Symbol,
    /// `(formal, actual)` pairs.
    pub conns: Vec<(Symbol, Symbol)>,
    /// Source line.
    pub line: u32,
}

/// A `.gate` library-cell instantiation.
#[derive(Debug, Clone)]
pub struct LibGate {
    /// Cell name (looked up in the built-in library at link time).
    pub cell: Symbol,
    /// `(pin, actual)` pairs.
    pub conns: Vec<(Symbol, Symbol)>,
    /// Source line.
    pub line: u32,
}

/// A `.mlatch` library-latch instantiation.
#[derive(Debug, Clone)]
pub struct Mlatch {
    /// Cell name.
    pub cell: Symbol,
    /// `(pin, actual)` pairs.
    pub conns: Vec<(Symbol, Symbol)>,
    /// Optional control signal (`NIL` parses as `None`).
    pub control: Option<Symbol>,
    /// Optional initial value.
    pub init: Option<InitVal>,
    /// Source line.
    pub line: u32,
}

/// An embedded KISS FSM block (`.start_kiss` .. `.end_kiss`), kept as
/// verbatim text and synthesised through `workloads::kiss` at link time.
#[derive(Debug, Clone)]
pub struct KissBlock {
    /// The lines between the markers (one per source line).
    pub text: String,
    /// Source line of `.start_kiss`.
    pub line: u32,
}

/// Which yosys annotation directive a [`Command::Attr`] came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrKind {
    /// `.attr key value`
    Attr,
    /// `.param key value`
    Param,
    /// `.cname name`
    Cname,
}

impl AttrKind {
    /// The directive keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            AttrKind::Attr => ".attr",
            AttrKind::Param => ".param",
            AttrKind::Cname => ".cname",
        }
    }
}

/// One command of a model body, in source order.
#[derive(Debug, Clone)]
pub enum Command {
    /// A `.names` logic block.
    Names(Names),
    /// A `.latch`.
    Latch(Latch),
    /// A `.subckt`.
    Subckt(Subckt),
    /// A `.gate`.
    Gate(LibGate),
    /// A `.mlatch`.
    Mlatch(Mlatch),
    /// An embedded KISS FSM.
    Kiss(KissBlock),
    /// A yosys annotation (`.attr` / `.param` / `.cname`), verbatim.
    Attr {
        /// Which directive.
        kind: AttrKind,
        /// Its tokens, verbatim.
        args: Vec<String>,
        /// Source line.
        line: u32,
    },
    /// A yosys `.conn from to` alias (linked as a buffer).
    Conn {
        /// Driving signal.
        from: Symbol,
        /// Driven signal.
        to: Symbol,
        /// Source line.
        line: u32,
    },
    /// Any other dot-directive (delay constraints, `.latch_order`,
    /// `.code`, …) carried verbatim as metadata for round-tripping.
    Directive {
        /// Keyword without the leading dot.
        name: String,
        /// Its tokens, verbatim.
        args: Vec<String>,
        /// Source line.
        line: u32,
    },
}

/// One `.model`.
#[derive(Debug, Clone)]
pub struct Model {
    /// Model name.
    pub name: String,
    /// `.inputs`, in order (possibly from several directives).
    pub inputs: Vec<Symbol>,
    /// `.outputs`, in order.
    pub outputs: Vec<Symbol>,
    /// Source line of each `.outputs` entry (parallel to `outputs`; used
    /// when an output has no driver).
    pub output_lines: Vec<u32>,
    /// `.clock` signals (metadata; not data wires).
    pub clocks: Vec<Symbol>,
    /// Declared `.blackbox` (yosys): interface only, no body expected.
    pub blackbox: bool,
    /// Body commands in source order.
    pub commands: Vec<Command>,
    /// Source line of the `.model` keyword.
    pub line: u32,
}

impl Model {
    /// An empty model.
    pub fn new(name: impl Into<String>, line: u32) -> Model {
        Model {
            name: name.into(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            output_lines: Vec::new(),
            clocks: Vec::new(),
            blackbox: false,
            commands: Vec::new(),
            line,
        }
    }
}

/// A parsed BLIF file: models plus the name interner.
#[derive(Debug, Clone)]
pub struct BlifFile {
    /// Models in source order (first is the default link root unless it
    /// is a blackbox).
    pub models: Vec<Model>,
    /// The shared name interner.
    pub interner: Interner,
}

impl BlifFile {
    /// Finds a model by name.
    pub fn model(&self, name: &str) -> Option<&Model> {
        self.models.iter().find(|m| m.name == name)
    }

    /// Per-model pre-flatten counts, in source order.
    pub fn model_counts(&self) -> Vec<netlist::stats::ModelCounts> {
        self.models
            .iter()
            .map(|m| {
                let mut counts = netlist::stats::ModelCounts {
                    name: m.name.clone(),
                    inputs: m.inputs.len(),
                    outputs: m.outputs.len(),
                    gates: 0,
                    latches: 0,
                    subckts: 0,
                    kiss_blocks: 0,
                    blackbox: m.blackbox,
                };
                for cmd in &m.commands {
                    match cmd {
                        Command::Names(_) | Command::Gate(_) | Command::Conn { .. } => {
                            counts.gates += 1
                        }
                        Command::Latch(_) | Command::Mlatch(_) => counts.latches += 1,
                        Command::Subckt(_) => counts.subckts += 1,
                        Command::Kiss(_) => counts.kiss_blocks += 1,
                        Command::Attr { .. } | Command::Directive { .. } => {}
                    }
                }
                counts
            })
            .collect()
    }
}
