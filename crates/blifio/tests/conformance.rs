//! Conformance and acceptance tests for the streaming front-end.
//!
//! * The old `netlist::blif` reader is the oracle on the flat subset:
//!   both readers must produce structurally identical circuits (and the
//!   new writer byte-identical text).
//! * The hierarchical acceptance test checks that a multi-model file
//!   with `.subckt`s, yosys annotations, `.conn` and an embedded KISS
//!   FSM flattens into the same circuit as a flattened-by-hand
//!   equivalent built directly against the `netlist` API.
//! * The large-workload test checks `flatten ∘ parse ∘ write_hier`
//!   against `workloads::large::build_flat`.

use blifio::{flatten, parse_reader, parse_str, structural_diff, LinkOptions, ParseOptions};
use netlist::{Circuit, NodeId, TruthTable};
use std::collections::HashMap;
use workloads::Encoding;

const FLAT_SOURCES: &[&str] = &[
    // Counter with a feedback latch.
    ".model counter\n.inputs en\n.outputs q\n.names en state q\n01 1\n10 1\n.latch q state 0\n.end\n",
    // Latch chain, off-set cubes, don't-cares, constants.
    ".model mix\n.inputs a b c\n.outputs z y k\n.names b2 c z\n1- 1\n-1 1\n.latch a b1 0\n.latch b1 b2 1\n.names a b y\n11 0\n.names k\n1\n.end\n",
    // PO name collision with a gate, PO fed straight from a latched PI.
    ".model col\n.inputs a\n.outputs a z\n.latch a z 3\n.end\n",
    // Continuations and comments.
    "# hdr\n.model cont\n.inputs a \\\nb\n.outputs z\n.names a b z # and\n11 1\n.end\n",
];

#[test]
fn flat_subset_matches_oracle() {
    for src in FLAT_SOURCES {
        let oracle = netlist::parse_blif(src).unwrap_or_else(|e| panic!("oracle on {src}: {e}"));
        let ours = blifio::read_circuit_str(src).unwrap_or_else(|e| panic!("blifio on {src}: {e}"));
        assert_eq!(oracle.name(), ours.name());
        if let Some(d) = structural_diff(&oracle, &ours) {
            panic!("structural mismatch on {src}: {d}");
        }
        assert!(netlist::random_equiv(&oracle, &ours, 64, 11)
            .unwrap()
            .is_equivalent());
        // The new writer serialises identically to the old one.
        assert_eq!(blifio::write_circuit(&ours), netlist::write_blif(&oracle));
    }
}

#[test]
fn generated_circuits_roundtrip_through_both_writers() {
    let bbtas = workloads::presets()
        .into_iter()
        .find(|p| p.name == "bbtas")
        .unwrap();
    let circuits = vec![
        workloads::fig1_circuit(true),
        workloads::fig3_circuit(),
        workloads::build_preset(&bbtas),
    ];
    for c in circuits {
        let text = netlist::write_blif(&c);
        let oracle = netlist::parse_blif(&text).unwrap();
        let ours = blifio::read_circuit_str(&text).unwrap();
        if let Some(d) = structural_diff(&oracle, &ours) {
            panic!("{}: {d}", c.name());
        }
    }
}

#[test]
fn tiny_chunks_change_nothing() {
    let src = FLAT_SOURCES.join("");
    let whole = blifio::write_file(&parse_str(&src).unwrap());
    for chunk in [1usize, 2, 3, 7, 64] {
        let f = parse_reader(src.as_bytes(), &ParseOptions { chunk }).unwrap();
        assert_eq!(blifio::write_file(&f), whole, "chunk={chunk}");
    }
}

/// Copies every gate of `f` into `dst`, mapping `f`'s PIs through
/// `input_map`; returns the node map (two passes, so feedback cycles
/// copy correctly).
fn inline(
    dst: &mut Circuit,
    f: &Circuit,
    input_map: &HashMap<NodeId, NodeId>,
) -> HashMap<NodeId, NodeId> {
    let mut map = input_map.clone();
    for (k, v) in f.gate_ids().enumerate() {
        let g = dst
            .add_gate(format!("inl{k}"), f.node(v).function().unwrap().clone())
            .unwrap();
        map.insert(v, g);
    }
    for v in f.gate_ids() {
        for &e in f.node(v).fanin() {
            let src = map[&f.edge(e).from()];
            dst.connect(src, map[&v], f.edge(e).ffs().to_vec()).unwrap();
        }
    }
    map
}

const KISS_TOGGLE: &str = "\
.i 1
.o 1
.s 2
.r OFF
1 OFF ON  1
0 OFF OFF 0
- ON  OFF 0
";

#[test]
fn hierarchical_yosys_kiss_acceptance() {
    let src = format!(
        "\
.model acc_top
.inputs a b
.outputs z q
.attr top 1
.param WIDTH 2
.subckt leafand p=a q=b o=t
.conn t tc
.subckt fsm i0=tc o0=fq
.names fq z
1 1
.names t q
1 1
.end
.model leafand
.inputs p q
.outputs o
.cname u_and
.names p q o
11 1
.end
.model fsm
.inputs i0
.outputs o0
.start_kiss
{KISS_TOGGLE}.end_kiss
.end
"
    );
    let flattened = blifio::read_circuit_str(&src).unwrap();

    // Flattened-by-hand equivalent, built directly on the netlist API.
    let stg = workloads::parse_kiss2(KISS_TOGGLE).unwrap();
    let f = workloads::synthesize_stg(&stg, Encoding::Binary, "f").unwrap();
    let mut exp = Circuit::new("acc_top");
    let a = exp.add_input("a").unwrap();
    let b = exp.add_input("b").unwrap();
    let t = exp.add_gate("t", TruthTable::and(2)).unwrap();
    exp.connect(a, t, vec![]).unwrap();
    exp.connect(b, t, vec![]).unwrap();
    let tc = exp.add_gate("tc", TruthTable::buf()).unwrap();
    exp.connect(t, tc, vec![]).unwrap();
    let mut input_map = HashMap::new();
    input_map.insert(f.inputs()[0], tc);
    let map = inline(&mut exp, &f, &input_map);
    // The lowered aux model buffers each FSM output (`.names … out0`),
    // so the hand-flattened form has that buffer too.
    let fsm_po = f.outputs()[0];
    let fe = f.node(fsm_po).fanin()[0];
    let fq = exp.add_gate("fq", TruthTable::buf()).unwrap();
    exp.connect(map[&f.edge(fe).from()], fq, f.edge(fe).ffs().to_vec())
        .unwrap();
    let zg = exp.add_gate("z$g", TruthTable::buf()).unwrap();
    exp.connect(fq, zg, vec![]).unwrap();
    let qg = exp.add_gate("q$g", TruthTable::buf()).unwrap();
    exp.connect(t, qg, vec![]).unwrap();
    let z = exp.add_output("z").unwrap();
    exp.connect(zg, z, vec![]).unwrap();
    let q = exp.add_output("q").unwrap();
    exp.connect(qg, q, vec![]).unwrap();

    if let Some(d) = structural_diff(&exp, &flattened) {
        panic!("hand-flattened vs linked: {d}");
    }
    assert!(netlist::random_equiv(&exp, &flattened, 128, 23)
        .unwrap()
        .is_equivalent());
}

#[test]
fn onehot_encoding_changes_register_count() {
    let src =
        format!(".model m\n.inputs i\n.outputs o\n.start_kiss\n{KISS_TOGGLE}.end_kiss\n.end\n");
    let f = parse_str(&src).unwrap();
    let bin = flatten(&f, &LinkOptions::default()).unwrap();
    let oh = flatten(
        &f,
        &LinkOptions {
            encoding: Encoding::OneHot,
            ..LinkOptions::default()
        },
    )
    .unwrap();
    assert_eq!(bin.ff_count_total(), 1);
    assert_eq!(oh.ff_count_total(), 2);
}

#[test]
fn large_workload_flattens_to_reference() {
    let spec = workloads::LargeSpec {
        name: "conf".into(),
        width: 6,
        kinds: 3,
        tiles: 5,
        tile_gates: 40,
        seed: 99,
    };
    let text = workloads::hier_to_string(&spec);
    let linked = blifio::read_circuit_str(&text).unwrap();
    let reference = workloads::build_flat(&spec).unwrap();
    assert_eq!(linked.num_gates(), spec.flat_gates());
    assert_eq!(linked.ff_count_total(), spec.flat_ffs());
    if let Some(d) = structural_diff(&reference, &linked) {
        panic!("large reference vs linked: {d}");
    }
    assert!(netlist::random_equiv(&reference, &linked, 32, 7)
        .unwrap()
        .is_equivalent());
    // Streaming with a small chunk is identical.
    let f = parse_reader(text.as_bytes(), &ParseOptions { chunk: 13 }).unwrap();
    let linked2 = flatten(&f, &LinkOptions::default()).unwrap();
    assert!(structural_diff(&linked, &linked2).is_none());
}

#[test]
fn model_counts_report_hierarchy() {
    let spec = workloads::LargeSpec {
        name: "cnt".into(),
        width: 3,
        kinds: 2,
        tiles: 4,
        tile_gates: 8,
        seed: 5,
    };
    let f = parse_str(&workloads::hier_to_string(&spec)).unwrap();
    let counts = f.model_counts();
    assert_eq!(counts.len(), 1 + spec.kinds + 1); // top + tiles + blackbox
    assert_eq!(counts[0].name, "cnt");
    assert_eq!(counts[0].subckts, spec.tiles);
    // Top gates: width `.conn` buffers + width PO buffers.
    assert_eq!(counts[0].gates, 2 * spec.width);
    assert_eq!(counts[1].gates, spec.tile_gates + spec.width);
    assert_eq!(counts[1].latches, spec.width);
    assert!(counts.last().unwrap().blackbox);
}
