//! Topological ordering with cycle reporting.
//!
//! Retiming graphs are cyclic, but their *zero-weight* subgraphs (the purely
//! combinational paths) must be acyclic for a circuit to be well-formed, and
//! every per-Φ computation walks that subgraph in topological order.

/// Error returned by [`topo_order`] when the graph contains a cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoError {
    /// Nodes that could not be ordered (each lies on or downstream of a
    /// cycle restricted to the unordered region).
    pub cyclic_nodes: Vec<usize>,
}

impl std::fmt::Display for TopoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "graph contains a cycle involving {} node(s)",
            self.cyclic_nodes.len()
        )
    }
}

impl std::error::Error for TopoError {}

/// Kahn's algorithm over an adjacency list.
///
/// Returns a topological order of all `adj.len()` nodes, or a [`TopoError`]
/// listing the nodes left unordered when a cycle exists. Convenience
/// wrapper over [`topo_order_csr`].
///
/// # Errors
///
/// Returns [`TopoError`] if the graph has a directed cycle.
///
/// # Examples
///
/// ```
/// let adj = vec![vec![1usize], vec![2], vec![]];
/// assert_eq!(graphalgo::topo::topo_order(&adj).unwrap(), vec![0, 1, 2]);
/// ```
pub fn topo_order(adj: &[Vec<usize>]) -> Result<Vec<usize>, TopoError> {
    topo_order_csr(&crate::Csr::from_adj(adj))
}

/// Kahn's algorithm over a CSR graph — the allocation-lean core behind
/// [`topo_order`]. The traversal pops a stack and scans each node's
/// contiguous target slice, so the order is identical to the nested-list
/// form for the same adjacency.
///
/// # Errors
///
/// Returns [`TopoError`] if the graph has a directed cycle.
pub fn topo_order_csr(g: &crate::Csr) -> Result<Vec<usize>, TopoError> {
    let n = g.len();
    let mut indeg = vec![0usize; n];
    for u in 0..n {
        for &v in g.out(u) {
            indeg[v as usize] += 1;
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut stack: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
    while let Some(u) = stack.pop() {
        order.push(u);
        for &v in g.out(u) {
            let v = v as usize;
            indeg[v] -= 1;
            if indeg[v] == 0 {
                stack.push(v);
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        let mut in_order = vec![false; n];
        for &v in &order {
            in_order[v] = true;
        }
        Err(TopoError {
            cyclic_nodes: (0..n).filter(|&v| !in_order[v]).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_dag() {
        let adj = vec![vec![2], vec![2], vec![3], vec![]];
        let order = topo_order(&adj).unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (i, &v) in order.iter().enumerate() {
                p[v] = i;
            }
            p
        };
        assert!(pos[0] < pos[2] && pos[1] < pos[2] && pos[2] < pos[3]);
    }

    #[test]
    fn detects_cycle() {
        let adj = vec![vec![1], vec![2], vec![0], vec![]];
        let err = topo_order(&adj).unwrap_err();
        assert_eq!(err.cyclic_nodes, vec![0, 1, 2]);
    }

    #[test]
    fn self_loop_is_cycle() {
        let adj = vec![vec![0]];
        assert!(topo_order(&adj).is_err());
    }

    #[test]
    fn empty_graph() {
        assert_eq!(topo_order(&[]).unwrap(), Vec::<usize>::new());
    }
}
