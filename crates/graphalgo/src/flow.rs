//! Maximum flow / minimum cut with unit node capacities.
//!
//! K-feasible cut computation in FlowMap-style mappers reduces to a max-flow
//! problem in which every *node* (except the source and the sink) has
//! capacity one and every edge has infinite capacity. A cut of value `≤ K`
//! then corresponds to a set of at most `K` nodes whose removal disconnects
//! the source from the sink — exactly the node cut-set `V(X, X̄)` of a
//! K-feasible cone.
//!
//! [`NodeCutNetwork`] implements this with the standard node-splitting
//! transformation: each node `v` becomes an arc `v_in → v_out` of capacity
//! one; an original edge `(u, v)` becomes an arc `u_out → v_in` of infinite
//! capacity. Max flow is computed with BFS augmenting paths (Edmonds–Karp);
//! since every augmenting path adds one unit of flow, deciding "is there a
//! cut of size ≤ K" takes at most `K + 1` BFS passes.
//!
//! Mappers issue thousands of cut queries per label sweep, so the network
//! is reusable: [`NodeCutNetwork::reset`] returns it to the empty state of
//! [`NodeCutNetwork::new`] while keeping every allocation (arc pool, CSR
//! adjacency buffers, BFS scratch), making the steady-state query cost
//! allocation-free.

use std::collections::VecDeque;

/// Arc capacity treated as infinite.
const INF: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Arc {
    to: u32,
    /// Residual capacity.
    cap: u32,
}

/// A flow network over `n` original nodes with unit node capacities.
///
/// Nodes are identified by `0..n`. Every node has capacity one by default;
/// the source and sink passed to [`NodeCutNetwork::max_flow`] are
/// automatically treated as uncapacitated. Individual nodes can also be made
/// uncapacitated with [`NodeCutNetwork::set_uncapacitated`] (used to merge
/// "forced internal" nodes with the sink side in cut-height checks).
///
/// # Examples
///
/// ```
/// use graphalgo::flow::NodeCutNetwork;
///
/// // A single chain 0 -> 1 -> 2 has a min node cut of size 1 ({1}).
/// let mut net = NodeCutNetwork::new(3);
/// net.add_edge(0, 1);
/// net.add_edge(1, 2);
/// assert_eq!(net.max_flow(0, 2, 5).flow, 1);
///
/// // Reuse the same allocations for an unrelated query.
/// net.reset(4);
/// net.add_edge(0, 1);
/// net.add_edge(0, 2);
/// net.add_edge(1, 3);
/// net.add_edge(2, 3);
/// assert_eq!(net.max_flow(0, 3, 5).flow, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NodeCutNetwork {
    n: usize,
    arcs: Vec<Arc>,
    /// CSR adjacency over split nodes, built lazily by
    /// [`NodeCutNetwork::max_flow`] once the arc pool is final: the arc ids
    /// incident to split node `x` (split node `2v` is `v_in`, `2v + 1` is
    /// `v_out`) are `adj_arcs[adj_off[x]..adj_off[x + 1]]`. Rows are filled
    /// by a stable counting pass in ascending arc id, which reproduces the
    /// insertion order a per-node `Vec` would have — BFS tie-breaking (and
    /// therefore the chosen min cut) is identical to the legacy layout.
    adj_off: Vec<u32>,
    adj_arcs: Vec<u32>,
    /// Arc index of the internal `v_in -> v_out` arc for node `v`.
    internal: Vec<u32>,
    source: usize,
    sink: usize,
    ran: bool,
    /// BFS predecessor scratch, reused across augmentations and resets.
    parent: Vec<u32>,
    /// BFS queue scratch.
    queue: VecDeque<u32>,
    /// Residual-reachability scratch for the min-cut extractions.
    mark: Vec<bool>,
}

/// Result of a bounded max-flow computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxFlowResult {
    /// The achieved flow value. If `exceeded_limit` is true this is
    /// `limit + 1` and the true max flow may be larger.
    pub flow: u32,
    /// True when augmentation stopped because the flow exceeded the limit.
    pub exceeded_limit: bool,
}

/// Result of a min-cut extraction after max flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinCutResult {
    /// Nodes forming the minimum node cut-set, ascending.
    pub cut_nodes: Vec<usize>,
    /// `source_side[v]` is true when `v_in` is reachable from the source in
    /// the residual graph — i.e. `v` lies in `X` (cut nodes included).
    pub source_side: Vec<bool>,
}

impl NodeCutNetwork {
    /// Creates an empty network over `n` nodes, all with capacity one.
    pub fn new(n: usize) -> Self {
        let mut net = NodeCutNetwork::default();
        net.reset(n);
        net
    }

    /// Returns the network to the state of [`NodeCutNetwork::new`]`(n)`
    /// while keeping every allocation: the arc pool, the CSR adjacency
    /// buffers and the BFS scratch all retain their capacity. The
    /// steady-state cost of a rebuilt query is therefore pure
    /// initialisation, no allocator traffic.
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        self.arcs.clear();
        self.internal.clear();
        for v in 0..n {
            self.internal.push(self.arcs.len() as u32);
            Self::push_arc(&mut self.arcs, 2 * v, 2 * v + 1, 1);
        }
        self.source = usize::MAX;
        self.sink = usize::MAX;
        self.ran = false;
    }

    fn push_arc(arcs: &mut Vec<Arc>, from: usize, to: usize, cap: u32) {
        arcs.push(Arc { to: to as u32, cap });
        arcs.push(Arc {
            to: from as u32,
            cap: 0,
        });
    }

    /// Owning split node of arc `ai`: the node the arc leaves from, which
    /// is recorded as the head of its residual pair.
    #[inline]
    fn arc_owner(arcs: &[Arc], ai: usize) -> usize {
        arcs[ai ^ 1].to as usize
    }

    /// Builds the CSR adjacency from the finalised arc pool with a stable
    /// counting pass (two sweeps over the arcs, zero allocator traffic in
    /// steady state). Ascending arc-id fill order makes each row identical
    /// to what incremental `Vec::push` at arc-creation time would produce.
    fn build_adj(&mut self) {
        let split = 2 * self.n;
        self.adj_off.clear();
        self.adj_off.resize(split + 1, 0);
        for ai in 0..self.arcs.len() {
            self.adj_off[Self::arc_owner(&self.arcs, ai) + 1] += 1;
        }
        for x in 0..split {
            self.adj_off[x + 1] += self.adj_off[x];
        }
        self.adj_arcs.clear();
        self.adj_arcs.resize(self.arcs.len(), 0);
        // Reuse `parent` as the per-row fill cursor; max_flow reinitialises
        // it before the first BFS anyway.
        self.parent.clear();
        self.parent.extend_from_slice(&self.adj_off[..split]);
        for ai in 0..self.arcs.len() {
            let owner = Self::arc_owner(&self.arcs, ai);
            let slot = self.parent[owner];
            self.adj_arcs[slot as usize] = ai as u32;
            self.parent[owner] = slot + 1;
        }
    }

    /// Number of original nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds a directed edge `u -> v` with infinite capacity.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range or flow was already computed.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(!self.ran, "cannot modify the network after max_flow");
        assert!(u < self.n && v < self.n, "edge endpoint out of range");
        Self::push_arc(&mut self.arcs, 2 * u + 1, 2 * v, INF);
    }

    /// Removes the unit capacity restriction from node `v`.
    ///
    /// Uncapacitated nodes can never appear in the min cut; use this for
    /// nodes that are forced to one side of the cut.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or flow was already computed.
    pub fn set_uncapacitated(&mut self, v: usize) {
        assert!(!self.ran, "cannot modify the network after max_flow");
        self.arcs[self.internal[v] as usize].cap = INF;
    }

    /// Computes max flow from `source` to `sink`, stopping early once the
    /// flow exceeds `limit`.
    ///
    /// The source and sink are made uncapacitated automatically. Returns the
    /// flow value; when [`MaxFlowResult::exceeded_limit`] is set the returned
    /// value is `limit + 1` (a witness that no cut of size `≤ limit` exists).
    ///
    /// # Panics
    ///
    /// Panics if called twice without a [`NodeCutNetwork::reset`] in
    /// between, if `source == sink`, or on out-of-range ids.
    pub fn max_flow(&mut self, source: usize, sink: usize, limit: u32) -> MaxFlowResult {
        assert!(!self.ran, "max_flow may only be called once");
        assert!(source < self.n && sink < self.n, "endpoint out of range");
        assert_ne!(source, sink, "source and sink must differ");
        self.ran = true;
        self.source = source;
        self.sink = sink;
        self.arcs[self.internal[source] as usize].cap = INF;
        self.arcs[self.internal[sink] as usize].cap = INF;
        self.build_adj();

        let split = 2 * self.n;
        let s = 2 * source + 1; // leave from source's out-node
        let t = 2 * sink; // arrive at sink's in-node
        let mut flow = 0u32;
        self.parent.clear();
        self.parent.resize(split, u32::MAX);
        loop {
            if flow > limit {
                return MaxFlowResult {
                    flow,
                    exceeded_limit: true,
                };
            }
            // BFS for an augmenting path.
            for p in self.parent.iter_mut() {
                *p = u32::MAX;
            }
            self.queue.clear();
            self.queue.push_back(s as u32);
            self.parent[s] = u32::MAX - 1; // mark visited
            let mut reached = false;
            'bfs: while let Some(x) = self.queue.pop_front() {
                let x = x as usize;
                let row = self.adj_off[x] as usize..self.adj_off[x + 1] as usize;
                for &ai in &self.adj_arcs[row] {
                    let arc = &self.arcs[ai as usize];
                    let y = arc.to as usize;
                    if arc.cap > 0 && self.parent[y] == u32::MAX {
                        self.parent[y] = ai;
                        if y == t {
                            reached = true;
                            break 'bfs;
                        }
                        self.queue.push_back(y as u32);
                    }
                }
            }
            if !reached {
                // Flow is exact (not truncated by `limit`): this run's
                // augmentation count is a real per-cut sample.
                engine::telemetry::record(engine::hist::Metric::AugmentationsPerCut, flow as u64);
                return MaxFlowResult {
                    flow,
                    exceeded_limit: false,
                };
            }
            // Augment one unit along the path (all arcs have cap >= 1).
            let mut y = t;
            while y != s {
                let ai = self.parent[y] as usize;
                if self.arcs[ai].cap != INF {
                    self.arcs[ai].cap -= 1;
                }
                if self.arcs[ai ^ 1].cap != INF {
                    self.arcs[ai ^ 1].cap += 1;
                }
                y = self.arcs[ai ^ 1].to as usize;
            }
            flow += 1;
            engine::telemetry::count(engine::telemetry::Counter::FlowAugmentations, 1);
            engine::trace::event1("augment", "flow", flow as u64);
        }
    }

    /// Extracts the minimum node cut after [`NodeCutNetwork::max_flow`]
    /// completed without exceeding its limit.
    ///
    /// `source` must be the source passed to `max_flow`. The cut nodes are
    /// exactly the nodes `v` whose `v_in` is residually reachable from the
    /// source but whose `v_out` is not.
    ///
    /// # Panics
    ///
    /// Panics if `max_flow` has not run or stopped early (`exceeded_limit`).
    pub fn min_cut(&mut self, source: usize) -> MinCutResult {
        assert!(self.ran, "min_cut requires max_flow to have run");
        assert_eq!(source, self.source, "min_cut source must match max_flow");
        let split = 2 * self.n;
        let s = 2 * source + 1;
        self.mark.clear();
        self.mark.resize(split, false);
        self.queue.clear();
        self.mark[s] = true;
        // The source's in-node is on the source side by definition.
        self.mark[2 * source] = true;
        self.queue.push_back(s as u32);
        while let Some(x) = self.queue.pop_front() {
            let x = x as usize;
            let row = self.adj_off[x] as usize..self.adj_off[x + 1] as usize;
            for &ai in &self.adj_arcs[row] {
                let arc = &self.arcs[ai as usize];
                let y = arc.to as usize;
                if arc.cap > 0 && !self.mark[y] {
                    self.mark[y] = true;
                    self.queue.push_back(y as u32);
                }
            }
        }
        let mut cut_nodes = Vec::new();
        let mut source_side = vec![false; self.n];
        for (v, side) in source_side.iter_mut().enumerate() {
            *side = self.mark[2 * v];
            if self.mark[2 * v] && !self.mark[2 * v + 1] {
                cut_nodes.push(v);
            }
        }
        MinCutResult {
            cut_nodes,
            source_side,
        }
    }

    /// Extracts the minimum node cut **closest to the sink**: the
    /// partition puts every split node that co-reaches the sink in the
    /// residual graph on the sink side. Compared to
    /// [`NodeCutNetwork::min_cut`] (closest to the source) this minimises
    /// the sink-side cone — mappers use it to reduce logic duplication.
    ///
    /// # Panics
    ///
    /// Panics if `max_flow` has not run.
    pub fn min_cut_near_sink(&mut self, source: usize) -> MinCutResult {
        assert!(self.ran, "min_cut requires max_flow to have run");
        assert_eq!(source, self.source, "min_cut source must match max_flow");
        let split = 2 * self.n;
        let t = 2 * self.sink;
        // Reverse residual BFS from the sink: x co-reaches t when some
        // residual arc x -> y exists with y co-reaching t. For each arc id
        // `ai ∈ adj[y]`, the paired arc `ai ^ 1` enters y from
        // `arcs[ai].to` and has residual capacity `arcs[ai ^ 1].cap`.
        self.mark.clear();
        self.mark.resize(split, false);
        self.queue.clear();
        self.mark[t] = true;
        self.mark[2 * self.sink + 1] = true;
        self.queue.push_back(t as u32);
        self.queue.push_back((2 * self.sink + 1) as u32);
        while let Some(y) = self.queue.pop_front() {
            let y = y as usize;
            let row = self.adj_off[y] as usize..self.adj_off[y + 1] as usize;
            for &ai in &self.adj_arcs[row] {
                let pair = (ai ^ 1) as usize;
                let from = self.arcs[ai as usize].to as usize;
                if self.arcs[pair].cap > 0 && !self.mark[from] {
                    self.mark[from] = true;
                    self.queue.push_back(from as u32);
                }
            }
        }
        let mut cut_nodes = Vec::new();
        let mut source_side = vec![false; self.n];
        for (v, side) in source_side.iter_mut().enumerate() {
            *side = !self.mark[2 * v];
            if !self.mark[2 * v] && self.mark[2 * v + 1] {
                cut_nodes.push(v);
            }
        }
        MinCutResult {
            cut_nodes,
            source_side,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_has_unit_cut() {
        let mut net = NodeCutNetwork::new(4);
        net.add_edge(0, 1);
        net.add_edge(1, 2);
        net.add_edge(2, 3);
        let r = net.max_flow(0, 3, 10);
        assert_eq!(r.flow, 1);
        assert!(!r.exceeded_limit);
        let cut = net.min_cut(0);
        assert_eq!(cut.cut_nodes.len(), 1);
        assert!(cut.cut_nodes[0] == 1 || cut.cut_nodes[0] == 2);
    }

    #[test]
    fn diamond_cut_is_both_branches() {
        let mut net = NodeCutNetwork::new(4);
        net.add_edge(0, 1);
        net.add_edge(0, 2);
        net.add_edge(1, 3);
        net.add_edge(2, 3);
        let r = net.max_flow(0, 3, 10);
        assert_eq!(r.flow, 2);
        let cut = net.min_cut(0);
        assert_eq!(cut.cut_nodes, vec![1, 2]);
        assert!(cut.source_side[0] && cut.source_side[1] && cut.source_side[2]);
        assert!(!cut.source_side[3]);
    }

    #[test]
    fn limit_stops_early() {
        // Complete bipartite-ish: many disjoint paths.
        let mut net = NodeCutNetwork::new(7);
        for mid in 1..6 {
            net.add_edge(0, mid);
            net.add_edge(mid, 6);
        }
        let r = net.max_flow(0, 6, 2);
        assert!(r.exceeded_limit);
        assert_eq!(r.flow, 3);
    }

    #[test]
    fn uncapacitated_node_not_in_cut() {
        // 0 -> 1 -> 3, 0 -> 2 -> 3; make 1 uncapacitated: flow still 2 but
        // the cut must avoid node 1 (it cuts 2 and... it must cut the arcs
        // via node 3 side; with node 3 = sink uncapacitated, the only cut
        // containing no 1 is {2, 1-side edges}; min cut here becomes {2}
        // plus the infinite path through 1 remains, so flow exceeds).
        let mut net = NodeCutNetwork::new(4);
        net.add_edge(0, 1);
        net.add_edge(0, 2);
        net.add_edge(1, 3);
        net.add_edge(2, 3);
        net.set_uncapacitated(1);
        let r = net.max_flow(0, 3, 100);
        // Path through node 1 is unbounded only in node capacity; edges are
        // infinite so flow is limited by... nothing on that path. The flow
        // saturates the limit.
        assert!(r.flow > 2);
        assert!(r.exceeded_limit || r.flow == 101);
    }

    #[test]
    fn disconnected_graph_zero_flow() {
        let mut net = NodeCutNetwork::new(3);
        net.add_edge(0, 1);
        let r = net.max_flow(0, 2, 4);
        assert_eq!(r.flow, 0);
        let cut = net.min_cut(0);
        assert!(cut.cut_nodes.is_empty());
    }

    #[test]
    fn reconvergent_fanout_single_cut_node() {
        // 0 -> 1; 1 -> 2; 1 -> 3; 2 -> 4; 3 -> 4. Min cut = {1}.
        let mut net = NodeCutNetwork::new(5);
        net.add_edge(0, 1);
        net.add_edge(1, 2);
        net.add_edge(1, 3);
        net.add_edge(2, 4);
        net.add_edge(3, 4);
        let r = net.max_flow(0, 4, 10);
        assert_eq!(r.flow, 1);
        let cut = net.min_cut(0);
        assert_eq!(cut.cut_nodes, vec![1]);
    }

    #[test]
    fn near_sink_cut_minimises_cone() {
        // 0 -> 1 -> 2 -> 3: both {1} and {2} are min cuts; near-sink
        // picks {2}, near-source picks {1}.
        let mut net = NodeCutNetwork::new(4);
        net.add_edge(0, 1);
        net.add_edge(1, 2);
        net.add_edge(2, 3);
        net.max_flow(0, 3, 4);
        assert_eq!(net.min_cut(0).cut_nodes, vec![1]);
        let near = net.min_cut_near_sink(0);
        assert_eq!(near.cut_nodes, vec![2]);
        assert!(near.source_side[1] && !near.source_side[3]);
    }

    #[test]
    fn near_sink_cut_same_size() {
        // Diamond with a waist: cuts must have equal cardinality.
        let mut net = NodeCutNetwork::new(6);
        net.add_edge(0, 1);
        net.add_edge(0, 2);
        net.add_edge(1, 3);
        net.add_edge(2, 3);
        net.add_edge(3, 4);
        net.add_edge(4, 5);
        net.max_flow(0, 5, 8);
        assert_eq!(net.min_cut(0).cut_nodes.len(), 1);
        assert_eq!(net.min_cut_near_sink(0).cut_nodes, vec![4]);
    }

    #[test]
    #[should_panic(expected = "max_flow may only be called once")]
    fn double_max_flow_panics() {
        let mut net = NodeCutNetwork::new(2);
        net.add_edge(0, 1);
        net.max_flow(0, 1, 3);
        net.max_flow(0, 1, 3);
    }

    #[test]
    fn multi_source_via_super_source() {
        // Model two leaves by adding a supersource node 0 feeding 1 and 2;
        // both reach 3 through 1->3, 2->3. Cut {1,2}.
        let mut net = NodeCutNetwork::new(4);
        net.add_edge(0, 1);
        net.add_edge(0, 2);
        net.add_edge(1, 3);
        net.add_edge(2, 3);
        let r = net.max_flow(0, 3, 2);
        assert_eq!(r.flow, 2);
        assert!(!r.exceeded_limit);
    }

    #[test]
    fn reset_matches_fresh_network() {
        // Run a query, reset (growing, then shrinking), and check every
        // reused query agrees with a fresh network.
        let mut net = NodeCutNetwork::new(4);
        net.add_edge(0, 1);
        net.add_edge(1, 2);
        net.add_edge(2, 3);
        assert_eq!(net.max_flow(0, 3, 10).flow, 1);

        // Grow: diamond over 5 nodes.
        net.reset(5);
        net.add_edge(0, 1);
        net.add_edge(0, 2);
        net.add_edge(1, 4);
        net.add_edge(2, 4);
        let r = net.max_flow(0, 4, 10);
        assert_eq!(r.flow, 2);
        assert_eq!(net.min_cut(0).cut_nodes, vec![1, 2]);

        // Shrink: chain over 3 nodes; stale adjacency must be gone.
        net.reset(3);
        net.add_edge(0, 1);
        net.add_edge(1, 2);
        let r = net.max_flow(0, 2, 10);
        assert_eq!(r.flow, 1);
        assert_eq!(net.min_cut_near_sink(0).cut_nodes, vec![1]);
    }

    #[test]
    fn reset_clears_uncapacitated_and_ran() {
        let mut net = NodeCutNetwork::new(3);
        net.add_edge(0, 1);
        net.add_edge(1, 2);
        net.set_uncapacitated(1);
        assert!(net.max_flow(0, 2, 50).flow > 1);
        // After reset the same node is unit-capacity again and max_flow
        // may run anew.
        net.reset(3);
        net.add_edge(0, 1);
        net.add_edge(1, 2);
        assert_eq!(net.max_flow(0, 2, 50).flow, 1);
    }
}
