//! Graph algorithm kernel for the TurboMap-frt reproduction.
//!
//! This crate provides the handful of classical graph algorithms that the
//! mapping and retiming stack is built on:
//!
//! * [`flow`] — maximum flow / minimum cut with **unit node capacities**
//!   (via node splitting), the engine behind FlowMap-style K-feasible cut
//!   computation ([Cong & Ding 1994], [Cong & Wu 1996]).
//! * [`paths`] — Dijkstra shortest paths with non-negative weights (used for
//!   the maximum forward-retiming values `frt(v)`, Lemma 1 of the paper) and
//!   Bellman–Ford-style longest paths with positive-cycle detection (used for
//!   the l-values of Theorem 1).
//! * [`topo`] — topological ordering with cycle reporting.
//! * [`scc`] — Tarjan strongly connected components.
//! * [`csr`] — flat compressed-sparse-row graph storage shared by the
//!   algorithm cores.
//!
//! All algorithms operate on plain index-based adjacency structures so
//! they stay decoupled from the netlist representation. Each traversal
//! core runs on [`Csr`] / [`WeightedCsr`]; the nested `Vec` entry points
//! are thin wrappers kept for convenience and doc parity.
//!
//! # Examples
//!
//! Finding a minimum node cut between a source and a sink:
//!
//! ```
//! use graphalgo::flow::NodeCutNetwork;
//!
//! // Diamond: 0 -> {1, 2} -> 3. The min node cut separating 0 from 3
//! // (with 0 and 3 uncuttable) is {1, 2}.
//! let mut net = NodeCutNetwork::new(4);
//! net.add_edge(0, 1);
//! net.add_edge(0, 2);
//! net.add_edge(1, 3);
//! net.add_edge(2, 3);
//! let result = net.max_flow(0, 3, 10);
//! assert_eq!(result.flow, 2);
//! let cut = net.min_cut(0);
//! assert_eq!(cut.cut_nodes, vec![1, 2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csr;
pub mod flow;
pub mod paths;
pub mod scc;
pub mod topo;

pub use csr::{Csr, WeightedCsr};
pub use flow::{MaxFlowResult, MinCutResult, NodeCutNetwork};
pub use paths::{
    dijkstra, dijkstra_csr, longest_paths, DijkstraScratch, LongestPathError, LongestPathScratch,
    NEG_INF,
};
pub use scc::{strongly_connected_components, strongly_connected_components_csr};
pub use topo::{topo_order, topo_order_csr, TopoError};
