//! Compressed sparse row (CSR) graph storage.
//!
//! The label sweeps walk the same graphs thousands of times per Φ probe,
//! and `Vec<Vec<_>>` adjacency pays one heap box per node plus a pointer
//! chase per row. [`Csr`] and [`WeightedCsr`] pack the same adjacency into
//! two (three) flat arrays — `offsets` and `targets` (and `weights`) — so
//! a node's out-neighbours are one contiguous slice and a whole-graph walk
//! is a linear scan.
//!
//! Construction is a stable two-pass counting sort: rows are filled in
//! ascending edge-id order, so each row lists targets in exactly the order
//! incremental `Vec::push` would have produced. Algorithms that tie-break
//! on adjacency order (Kahn's stack, Tarjan's child order, BFS) therefore
//! return bit-identical results on either representation.

/// Unweighted directed graph in compressed sparse row form.
///
/// # Examples
///
/// ```
/// use graphalgo::Csr;
///
/// let g = Csr::from_adj(&[vec![1usize, 2], vec![2], vec![]]);
/// assert_eq!(g.len(), 3);
/// assert_eq!(g.out(0), &[1, 2]);
/// assert_eq!(g.out(2), &[] as &[u32]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Csr {
    /// `offsets[u]..offsets[u + 1]` indexes `targets` for node `u`;
    /// length `n + 1`.
    offsets: Vec<u32>,
    /// Concatenated out-neighbour lists.
    targets: Vec<u32>,
}

impl Csr {
    /// Builds a CSR graph from `n` nodes and a directed edge list, keeping
    /// each node's targets in edge-list order.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Csr {
        let mut offsets = vec![0u32; n + 1];
        for &(u, v) in edges {
            assert!(u < n && v < n, "edge endpoint out of range");
            offsets[u + 1] += 1;
        }
        for u in 0..n {
            offsets[u + 1] += offsets[u];
        }
        let mut targets = vec![0u32; edges.len()];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for &(u, v) in edges {
            targets[cursor[u] as usize] = v as u32;
            cursor[u] += 1;
        }
        Csr { offsets, targets }
    }

    /// Builds a CSR graph from nested adjacency lists.
    ///
    /// # Panics
    ///
    /// Panics if a target is out of range.
    pub fn from_adj(adj: &[Vec<usize>]) -> Csr {
        let n = adj.len();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut total = 0u32;
        for row in adj {
            total += row.len() as u32;
            offsets.push(total);
        }
        let mut targets = Vec::with_capacity(total as usize);
        for row in adj {
            for &v in row {
                assert!(v < n, "edge target out of range");
                targets.push(v as u32);
            }
        }
        Csr { offsets, targets }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-neighbours of `u`, in insertion order.
    #[inline]
    pub fn out(&self, u: usize) -> &[u32] {
        &self.targets[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }
}

/// Directed graph with `u64` edge weights in compressed sparse row form.
///
/// # Examples
///
/// ```
/// use graphalgo::WeightedCsr;
///
/// let g = WeightedCsr::from_edges(3, &[(0, 1, 5), (0, 2, 0), (1, 2, 1)]);
/// assert_eq!(g.out(0), &[1, 2]);
/// assert_eq!(g.out_weights(0), &[5, 0]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WeightedCsr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    weights: Vec<u64>,
}

impl WeightedCsr {
    /// Builds a weighted CSR graph from `n` nodes and `(from, to, weight)`
    /// edges, keeping each node's targets in edge-list order.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn from_edges(n: usize, edges: &[(usize, usize, u64)]) -> WeightedCsr {
        let mut offsets = vec![0u32; n + 1];
        for &(u, v, _) in edges {
            assert!(u < n && v < n, "edge endpoint out of range");
            offsets[u + 1] += 1;
        }
        for u in 0..n {
            offsets[u + 1] += offsets[u];
        }
        let mut targets = vec![0u32; edges.len()];
        let mut weights = vec![0u64; edges.len()];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for &(u, v, w) in edges {
            let slot = cursor[u] as usize;
            targets[slot] = v as u32;
            weights[slot] = w;
            cursor[u] += 1;
        }
        WeightedCsr {
            offsets,
            targets,
            weights,
        }
    }

    /// Builds a weighted CSR graph from nested adjacency lists.
    ///
    /// # Panics
    ///
    /// Panics if a target is out of range.
    pub fn from_adj(adj: &[Vec<(usize, u64)>]) -> WeightedCsr {
        let n = adj.len();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut total = 0u32;
        for row in adj {
            total += row.len() as u32;
            offsets.push(total);
        }
        let mut targets = Vec::with_capacity(total as usize);
        let mut weights = Vec::with_capacity(total as usize);
        for row in adj {
            for &(v, w) in row {
                assert!(v < n, "edge target out of range");
                targets.push(v as u32);
                weights.push(w);
            }
        }
        WeightedCsr {
            offsets,
            targets,
            weights,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-neighbours of `u`, in insertion order.
    #[inline]
    pub fn out(&self, u: usize) -> &[u32] {
        &self.targets[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    /// Weights aligned with [`WeightedCsr::out`]`(u)`.
    #[inline]
    pub fn out_weights(&self, u: usize) -> &[u64] {
        &self.weights[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_preserves_insertion_order() {
        // Node 1's edges arrive interleaved with node 0's; each row must
        // still list targets in edge-list order.
        let g = Csr::from_edges(4, &[(1, 3), (0, 2), (1, 0), (0, 1), (1, 1)]);
        assert_eq!(g.out(0), &[2, 1]);
        assert_eq!(g.out(1), &[3, 0, 1]);
        assert_eq!(g.out(2), &[] as &[u32]);
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    fn from_adj_round_trips() {
        let adj = vec![vec![1usize, 2], vec![2], vec![], vec![0]];
        let g = Csr::from_adj(&adj);
        for (u, row) in adj.iter().enumerate() {
            let got: Vec<usize> = g.out(u).iter().map(|&v| v as usize).collect();
            assert_eq!(&got, row);
        }
    }

    #[test]
    fn from_edges_matches_from_adj() {
        let edges = [(0usize, 1usize), (0, 2), (2, 1), (2, 0)];
        let mut adj = vec![Vec::new(); 3];
        for &(u, v) in &edges {
            adj[u].push(v);
        }
        assert_eq!(Csr::from_edges(3, &edges), Csr::from_adj(&adj));
    }

    #[test]
    fn weighted_rows_stay_aligned() {
        let g = WeightedCsr::from_edges(3, &[(2, 0, 7), (0, 1, 1), (2, 1, 9)]);
        assert_eq!(g.out(2), &[0, 1]);
        assert_eq!(g.out_weights(2), &[7, 9]);
        assert_eq!(g.out(0), &[1]);
        assert_eq!(g.out_weights(0), &[1]);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]);
        assert!(g.is_empty());
        assert_eq!(g.num_edges(), 0);
        let w = WeightedCsr::from_adj(&[]);
        assert!(w.is_empty());
    }

    #[test]
    #[should_panic(expected = "edge endpoint out of range")]
    fn out_of_range_edge_panics() {
        Csr::from_edges(2, &[(0, 2)]);
    }
}
