//! Strongly connected components (iterative Tarjan).
//!
//! Used by the netlist validator to report feedback structure and to detect
//! register loops that are unreachable from primary inputs (a precondition
//! violation for the label computations — see DESIGN.md).

/// Computes the strongly connected components of the graph.
///
/// Returns the components in **reverse topological order** of the condensed
/// graph (a component appears before the components it can reach... Tarjan
/// emits each SCC when its root pops, so components are ordered such that
/// every edge of the condensation goes from a later component to an earlier
/// one). Each component lists its member nodes.
///
/// # Examples
///
/// ```
/// // 0 <-> 1 form one SCC; 2 alone.
/// let adj = vec![vec![1usize], vec![0, 2], vec![]];
/// let sccs = graphalgo::scc::strongly_connected_components(&adj);
/// assert_eq!(sccs.len(), 2);
/// assert_eq!(sccs[0], vec![2]);
/// let mut big = sccs[1].clone();
/// big.sort_unstable();
/// assert_eq!(big, vec![0, 1]);
/// ```
pub fn strongly_connected_components(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    strongly_connected_components_csr(&crate::Csr::from_adj(adj))
}

/// [`strongly_connected_components`] over a CSR graph — the
/// allocation-lean core. Children are visited in target-slice order, so
/// the component order and membership match the nested-list form for the
/// same adjacency.
pub fn strongly_connected_components_csr(g: &crate::Csr) -> Vec<Vec<usize>> {
    let n = g.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components = Vec::new();

    // Iterative DFS: frames of (node, next child position).
    let mut call: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        call.push((start, 0));
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        while let Some(&mut (v, ref mut ci)) = call.last_mut() {
            let row = g.out(v);
            if *ci < row.len() {
                let w = row[*ci] as usize;
                *ci += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    components.push(comp);
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted(mut v: Vec<usize>) -> Vec<usize> {
        v.sort_unstable();
        v
    }

    #[test]
    fn dag_gives_singletons() {
        let adj = vec![vec![1], vec![2], vec![]];
        let sccs = strongly_connected_components(&adj);
        assert_eq!(sccs.len(), 3);
    }

    #[test]
    fn cycle_is_one_component() {
        let adj = vec![vec![1], vec![2], vec![0]];
        let sccs = strongly_connected_components(&adj);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sorted(sccs[0].clone()), vec![0, 1, 2]);
    }

    #[test]
    fn two_cycles_bridge() {
        // (0,1) cycle -> (2,3) cycle
        let adj = vec![vec![1], vec![0, 2], vec![3], vec![2]];
        let sccs = strongly_connected_components(&adj);
        assert_eq!(sccs.len(), 2);
        assert_eq!(sorted(sccs[0].clone()), vec![2, 3]);
        assert_eq!(sorted(sccs[1].clone()), vec![0, 1]);
    }

    #[test]
    fn deep_chain_no_stack_overflow() {
        // 100k-node chain exercises the iterative implementation.
        let n = 100_000;
        let adj: Vec<Vec<usize>> = (0..n)
            .map(|v| if v + 1 < n { vec![v + 1] } else { vec![] })
            .collect();
        let sccs = strongly_connected_components(&adj);
        assert_eq!(sccs.len(), n);
    }
}
