//! Shortest and longest path computations.
//!
//! Two path problems underpin the paper's label machinery:
//!
//! * **Maximum forward retiming values** (Lemma 1): `frt(v)` is the minimum
//!   path *weight* (flip-flop count) over all paths from any PI to `v` — a
//!   multi-source shortest path problem with non-negative weights, solved by
//!   [`dijkstra`].
//! * **l-values** (Theorem 1): `l(v)` is the maximum path *length* from any
//!   PI to `v` where each edge `e(u,v)` has length `d(v) − Φ·w(e)`. The
//!   retiming graph is cyclic, so this is a Bellman–Ford-style longest path
//!   with positive cycles signalling infeasibility, solved by
//!   [`longest_paths`].
//!
//! Both solvers are called once per probe of a binary search over Φ, so
//! each has a scratch-reusing form ([`DijkstraScratch`],
//! [`LongestPathScratch`]) that keeps its distance arrays and heap across
//! calls; the free functions are one-shot conveniences over a fresh
//! scratch.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Sentinel for "unreachable" in longest-path results (acts as `−∞`).
pub const NEG_INF: i64 = i64::MIN / 4;

/// Reusable state for [`dijkstra`]: the distance array and the binary
/// heap survive across calls, so repeated queries (one per Φ probe) do
/// not touch the allocator once warm.
#[derive(Debug, Default, Clone)]
pub struct DijkstraScratch {
    dist: Vec<Option<u64>>,
    heap: BinaryHeap<Reverse<(u64, usize)>>,
}

impl DijkstraScratch {
    /// An empty scratch.
    pub fn new() -> DijkstraScratch {
        DijkstraScratch::default()
    }

    /// Multi-source Dijkstra; see [`dijkstra`] for the semantics. The
    /// returned slice borrows this scratch and is valid until the next
    /// call.
    ///
    /// # Panics
    ///
    /// Panics if a source is out of range.
    pub fn run(&mut self, adj: &[Vec<(usize, u64)>], sources: &[usize]) -> &[Option<u64>] {
        self.run_csr(&crate::WeightedCsr::from_adj(adj), sources)
    }

    /// [`DijkstraScratch::run`] over a weighted CSR graph — the
    /// allocation-lean core used by the per-Φ probe loops, which keep one
    /// CSR per circuit and one scratch per search.
    ///
    /// # Panics
    ///
    /// Panics if a source is out of range.
    pub fn run_csr(&mut self, g: &crate::WeightedCsr, sources: &[usize]) -> &[Option<u64>] {
        let n = g.len();
        self.dist.clear();
        self.dist.resize(n, None);
        self.heap.clear();
        for &s in sources {
            assert!(s < n, "source out of range");
            if self.dist[s] != Some(0) {
                self.dist[s] = Some(0);
                self.heap.push(Reverse((0, s)));
            }
        }
        while let Some(Reverse((d, u))) = self.heap.pop() {
            if self.dist[u] != Some(d) {
                continue;
            }
            for (&v, &w) in g.out(u).iter().zip(g.out_weights(u)) {
                let v = v as usize;
                let nd = d + w;
                if self.dist[v].is_none_or(|cur| nd < cur) {
                    self.dist[v] = Some(nd);
                    self.heap.push(Reverse((nd, v)));
                }
            }
        }
        &self.dist
    }
}

/// Multi-source Dijkstra over an adjacency list with non-negative `u64`
/// weights.
///
/// Returns `dist[v] = None` for nodes unreachable from every source.
/// One-shot form of [`DijkstraScratch::run`].
///
/// # Examples
///
/// ```
/// let adj = vec![
///     vec![(1, 0u64), (2, 2)], // node 0
///     vec![(2, 1)],            // node 1
///     vec![],                  // node 2
/// ];
/// let dist = graphalgo::paths::dijkstra(&adj, &[0]);
/// assert_eq!(dist, vec![Some(0), Some(0), Some(1)]);
/// ```
///
/// # Panics
///
/// Panics if a source or edge target is out of range.
pub fn dijkstra(adj: &[Vec<(usize, u64)>], sources: &[usize]) -> Vec<Option<u64>> {
    let mut scratch = DijkstraScratch::new();
    scratch.run(adj, sources);
    scratch.dist
}

/// [`dijkstra`] over a weighted CSR graph. One-shot form of
/// [`DijkstraScratch::run_csr`].
///
/// # Panics
///
/// Panics if a source is out of range.
pub fn dijkstra_csr(g: &crate::WeightedCsr, sources: &[usize]) -> Vec<Option<u64>> {
    let mut scratch = DijkstraScratch::new();
    scratch.run_csr(g, sources);
    scratch.dist
}

/// Error from [`longest_paths`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LongestPathError {
    /// Relaxation failed to converge within `n` rounds, implying a
    /// positive-length cycle reachable from a source. Carries the witness:
    /// the cycle's node sequence in forward edge order (each consecutive
    /// pair `(a, b)` — and the wrap-around pair — is an edge of the input),
    /// rotated so the smallest node id leads. A self-loop yields a
    /// single-node sequence.
    PositiveCycle(Vec<usize>),
    /// A relaxation overflowed `i64` towards `+∞` — path lengths grew past
    /// what the machine can represent, so no finite answer exists.
    Overflow,
}

impl std::fmt::Display for LongestPathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LongestPathError::PositiveCycle(cycle) => {
                write!(
                    f,
                    "positive cycle of {} node(s) reachable from a source",
                    cycle.len()
                )
            }
            LongestPathError::Overflow => {
                write!(f, "path length overflowed i64 during relaxation")
            }
        }
    }
}

impl std::error::Error for LongestPathError {}

/// "No predecessor recorded" sentinel in [`LongestPathScratch::pred`].
const NO_PRED: usize = usize::MAX;

/// Reusable state for [`longest_paths`]: the length and predecessor
/// arrays survive across calls (one per Φ probe of a retiming
/// feasibility search).
#[derive(Debug, Default, Clone)]
pub struct LongestPathScratch {
    len: Vec<i64>,
    /// `pred[v]` is the tail of the edge whose relaxation last improved
    /// `len[v]` ([`NO_PRED`] when never improved) — the witness trail for
    /// positive-cycle extraction.
    pred: Vec<usize>,
}

impl LongestPathScratch {
    /// An empty scratch.
    pub fn new() -> LongestPathScratch {
        LongestPathScratch::default()
    }

    /// Longest paths by Bellman–Ford relaxation; see [`longest_paths`] for
    /// the semantics. The returned slice borrows this scratch and is valid
    /// until the next call.
    ///
    /// # Errors
    ///
    /// [`LongestPathError::PositiveCycle`] — carrying the cycle's node
    /// sequence — when a positive-length cycle is reachable from a
    /// source; [`LongestPathError::Overflow`] when a relaxation overflows
    /// `i64` towards `+∞` (a candidate that underflows towards `−∞` can
    /// never improve a length and is simply skipped — saturation, not an
    /// error).
    ///
    /// # Panics
    ///
    /// Panics if a source is out of range.
    pub fn run(
        &mut self,
        n: usize,
        edges: &[(usize, usize, i64)],
        sources: &[usize],
    ) -> Result<&[i64], LongestPathError> {
        self.len.clear();
        self.len.resize(n, NEG_INF);
        self.pred.clear();
        self.pred.resize(n, NO_PRED);
        for &s in sources {
            assert!(s < n, "source out of range");
            self.len[s] = 0;
        }
        for round in 0..=n {
            let mut changed = false;
            let mut last_improved = NO_PRED;
            for &(u, v, l) in edges {
                if self.len[u] <= NEG_INF {
                    continue;
                }
                let cand = match self.len[u].checked_add(l) {
                    Some(c) => c,
                    // Underflow: the candidate is far below NEG_INF and can
                    // never improve len[v]; skip it (saturating behaviour).
                    None if l < 0 => continue,
                    None => return Err(LongestPathError::Overflow),
                };
                if cand > self.len[v] {
                    self.len[v] = cand;
                    self.pred[v] = u;
                    last_improved = v;
                    changed = true;
                }
            }
            if !changed {
                return Ok(&self.len);
            }
            if round == n {
                return Err(LongestPathError::PositiveCycle(
                    self.extract_cycle(last_improved),
                ));
            }
        }
        Ok(&self.len)
    }

    /// Extracts the positive cycle witnessed by a node improved in the
    /// final relaxation round.
    ///
    /// Soundness: a node improved in round `n` used a predecessor value
    /// that itself appeared no earlier than round `n − 1` (an older value
    /// would have propagated across the edge a round sooner), so the
    /// predecessor chain's improvement rounds drop by at most one per
    /// step. A chain ending at a never-improved source would therefore
    /// need more than `n` distinct nodes — impossible — so walking `pred`
    /// from `start` must revisit a node within `n` steps, and that node
    /// lies on a cycle of the predecessor graph. Every predecessor edge
    /// satisfies `len[x] ≤ len[pred[x]] + l` with strict inequality at the
    /// successor of the cycle's most recently improved node, so the
    /// cycle's total length is strictly positive.
    fn extract_cycle(&self, start: usize) -> Vec<usize> {
        let n = self.pred.len();
        let mut seen = vec![false; n];
        let mut v = start;
        while !seen[v] {
            seen[v] = true;
            v = self.pred[v];
        }
        // `v` repeats, so it lies on the cycle: collect the cycle by one
        // more predecessor lap.
        let mut cycle = vec![v];
        let mut u = self.pred[v];
        while u != v {
            cycle.push(u);
            u = self.pred[u];
        }
        // The predecessor walk visits nodes against edge direction;
        // reverse for forward order, then rotate the smallest id to the
        // front so equal cycles render identically regardless of where
        // the walk entered them.
        cycle.reverse();
        let lead = cycle
            .iter()
            .enumerate()
            .min_by_key(|&(_, &x)| x)
            .map(|(i, _)| i)
            .unwrap_or(0);
        cycle.rotate_left(lead);
        cycle
    }
}

/// Longest paths from `sources` over possibly-cyclic graphs with `i64` edge
/// lengths (Bellman–Ford relaxation).
///
/// Source nodes start at length 0; all other nodes at [`NEG_INF`]. A node
/// that remains at `NEG_INF` is unreachable. Relaxation runs at most `n`
/// rounds; if the lengths still change afterwards there is a positive cycle
/// and `Err(LongestPathError::PositiveCycle)` is returned — for l-values
/// this means the target clock period `Φ` is infeasible. Arithmetic is
/// checked: a relaxation overflowing `i64` towards `+∞` reports
/// [`LongestPathError::Overflow`] instead of wrapping. One-shot form of
/// [`LongestPathScratch::run`].
///
/// # Errors
///
/// Returns [`LongestPathError::PositiveCycle`] when a positive-length cycle
/// is reachable from a source, [`LongestPathError::Overflow`] when path
/// lengths exceed `i64`.
///
/// # Examples
///
/// ```
/// // 0 -> 1 (len 1), 1 -> 2 (len -3), 0 -> 2 (len 0)
/// let edges = [(0usize, 1usize, 1i64), (1, 2, -3), (0, 2, 0)];
/// let l = graphalgo::paths::longest_paths(3, &edges, &[0]).unwrap();
/// assert_eq!(l, vec![0, 1, 0]);
/// ```
pub fn longest_paths(
    n: usize,
    edges: &[(usize, usize, i64)],
    sources: &[usize],
) -> Result<Vec<i64>, LongestPathError> {
    let mut scratch = LongestPathScratch::new();
    scratch.run(n, edges, sources)?;
    Ok(scratch.len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dijkstra_multi_source_takes_min() {
        let adj = vec![vec![(2, 5u64)], vec![(2, 1)], vec![(3, 0)], vec![]];
        let dist = dijkstra(&adj, &[0, 1]);
        assert_eq!(dist, vec![Some(0), Some(0), Some(1), Some(1)]);
    }

    #[test]
    fn dijkstra_unreachable_is_none() {
        let adj = vec![vec![], vec![(0, 1u64)]];
        let dist = dijkstra(&adj, &[0]);
        assert_eq!(dist, vec![Some(0), None]);
    }

    #[test]
    fn dijkstra_zero_weight_cycle_ok() {
        // 0 -> 1 -> 2 -> 1 with zero weights must terminate.
        let adj = vec![vec![(1, 0u64)], vec![(2, 0)], vec![(1, 0)]];
        let dist = dijkstra(&adj, &[0]);
        assert_eq!(dist, vec![Some(0), Some(0), Some(0)]);
    }

    #[test]
    fn dijkstra_scratch_reuse_matches_fresh() {
        let mut scratch = DijkstraScratch::new();
        let a = vec![vec![(1, 2u64)], vec![]];
        assert_eq!(scratch.run(&a, &[0]), &[Some(0), Some(2)]);
        // Second, smaller query on the same scratch: no stale state.
        let b = vec![vec![]];
        assert_eq!(scratch.run(&b, &[0]), &[Some(0)]);
        // Third, bigger again.
        let c = vec![vec![(2, 1u64)], vec![], vec![(1, 1)]];
        assert_eq!(scratch.run(&c, &[0]), dijkstra(&c, &[0]).as_slice());
    }

    #[test]
    fn longest_path_on_dag() {
        // Classic: two paths to node 3, lengths 3 and 1.
        let edges = [(0, 1, 1), (1, 3, 2), (0, 2, 1), (2, 3, 0)];
        let l = longest_paths(4, &edges, &[0]).unwrap();
        assert_eq!(l[3], 3);
    }

    #[test]
    fn longest_path_negative_cycle_converges() {
        // Cycle 1 -> 2 -> 1 of total length -1: fine.
        let edges = [(0, 1, 1), (1, 2, 1), (2, 1, -2)];
        let l = longest_paths(3, &edges, &[0]).unwrap();
        assert_eq!(l, vec![0, 1, 2]);
    }

    #[test]
    fn longest_path_zero_cycle_converges() {
        let edges = [(0, 1, 1), (1, 2, 1), (2, 1, -1)];
        let l = longest_paths(3, &edges, &[0]).unwrap();
        assert_eq!(l[1], 1);
        assert_eq!(l[2], 2);
    }

    #[test]
    fn longest_path_positive_cycle_errors_with_witness() {
        // 1 -> 2 (len 1) and 2 -> 1 (len 0): total +1 per lap.
        let edges = [(0, 1, 1), (1, 2, 1), (2, 1, 0)];
        assert_eq!(
            longest_paths(3, &edges, &[0]),
            Err(LongestPathError::PositiveCycle(vec![1, 2]))
        );
    }

    #[test]
    fn positive_cycle_witness_self_loop() {
        let edges = [(0, 1, 0), (1, 1, 2)];
        assert_eq!(
            longest_paths(2, &edges, &[0]),
            Err(LongestPathError::PositiveCycle(vec![1]))
        );
        // Self-loop directly on a source.
        let edges = [(0, 0, 1)];
        assert_eq!(
            longest_paths(1, &edges, &[0]),
            Err(LongestPathError::PositiveCycle(vec![0]))
        );
    }

    #[test]
    fn positive_cycle_witness_two_cycle() {
        // Mixed-sign 2-cycle with positive total (3 - 1 = +2).
        let edges = [(0, 1, 3), (1, 0, -1)];
        match longest_paths(2, &edges, &[0]) {
            Err(LongestPathError::PositiveCycle(cycle)) => {
                assert_eq!(cycle, vec![0, 1]);
            }
            other => panic!("expected a positive-cycle witness, got {other:?}"),
        }
    }

    #[test]
    fn positive_cycle_witness_disconnected_components() {
        // Component A (0, 1) holds the positive cycle; component B
        // (3 -> 4) is acyclic. Both have sources; the witness names only
        // component A's cycle, and B's lengths are still computed before
        // the error fires.
        let edges = [(0, 1, 1), (1, 0, 1), (3, 4, 7)];
        match longest_paths(5, &edges, &[0, 3]) {
            Err(LongestPathError::PositiveCycle(cycle)) => {
                assert_eq!(cycle, vec![0, 1]);
            }
            other => panic!("expected a positive-cycle witness, got {other:?}"),
        }
    }

    /// Every consecutive pair (and the wrap-around pair) of a witness
    /// must be an actual input edge, and the total length must be
    /// strictly positive — the properties an independent checker relies
    /// on.
    #[test]
    fn positive_cycle_witness_is_a_real_positive_cycle() {
        let edges = [
            (0, 1, 2),
            (1, 2, -1),
            (2, 3, 1),
            (3, 1, 1),
            (2, 4, 5),
            (4, 4, -3),
        ];
        let cycle = match longest_paths(5, &edges, &[0]) {
            Err(LongestPathError::PositiveCycle(c)) => c,
            other => panic!("expected a positive-cycle witness, got {other:?}"),
        };
        assert!(!cycle.is_empty());
        let mut total = 0i64;
        for i in 0..cycle.len() {
            let (u, v) = (cycle[i], cycle[(i + 1) % cycle.len()]);
            let l = edges
                .iter()
                .find(|&&(a, b, _)| a == u && b == v)
                .map(|&(_, _, l)| l)
                .unwrap_or_else(|| panic!("witness pair {u} -> {v} is not an edge"));
            total += l;
        }
        assert!(total > 0, "witness cycle has non-positive length {total}");
    }

    #[test]
    fn positive_cycle_unreachable_is_ignored() {
        // Cycle 1 <-> 2 positive but not reachable from source 0.
        let edges = [(1, 2, 1), (2, 1, 1)];
        let l = longest_paths(3, &edges, &[0]).unwrap();
        assert_eq!(l, vec![0, NEG_INF, NEG_INF]);
    }

    #[test]
    fn longest_path_positive_overflow_is_an_error() {
        // Two huge edges in sequence: 0 + MAX/2 is fine, adding another
        // MAX/2 + MAX/2 wraps — must be reported, not wrapped into a
        // negative "length".
        let big = i64::MAX / 2;
        let edges = [(0, 1, big), (1, 2, big), (2, 3, big)];
        assert_eq!(
            longest_paths(4, &edges, &[0]),
            Err(LongestPathError::Overflow)
        );
    }

    #[test]
    fn longest_path_adversarial_cycle_reports_not_wraps() {
        // A positive cycle with weights large enough that unchecked
        // arithmetic would wrap to negative (masking the cycle) before the
        // n-round detector fires.
        let big = i64::MAX / 2;
        let edges = [(0, 1, big), (1, 2, big), (2, 1, big)];
        let err = longest_paths(3, &edges, &[0]).unwrap_err();
        assert!(
            matches!(
                err,
                LongestPathError::Overflow | LongestPathError::PositiveCycle(_)
            ),
            "wrapped arithmetic must not produce an Ok result: {err:?}"
        );
    }

    #[test]
    fn longest_path_negative_underflow_saturates() {
        // len[1] stays above NEG_INF, then a hugely negative edge would
        // underflow i64: the candidate can never win, so it is skipped and
        // node 2 stays unreachable-equivalent instead of wrapping positive.
        let edges = [(0, 1, NEG_INF + 1), (1, 2, i64::MIN / 2)];
        let l = longest_paths(3, &edges, &[0]).unwrap();
        assert_eq!(l[1], NEG_INF + 1);
        assert_eq!(l[2], NEG_INF);
    }

    #[test]
    fn longest_path_scratch_reuse_matches_fresh() {
        let mut scratch = LongestPathScratch::new();
        let e1 = [(0, 1, 1), (1, 3, 2), (0, 2, 1), (2, 3, 0)];
        assert_eq!(scratch.run(4, &e1, &[0]).unwrap()[3], 3);
        // Smaller follow-up query: stale lengths must not leak.
        let e2 = [(0, 1, -5)];
        assert_eq!(scratch.run(2, &e2, &[0]).unwrap(), &[0, -5]);
        // Error path leaves the scratch reusable.
        let cyc = [(0, 1, 1), (1, 0, 1)];
        assert_eq!(
            scratch.run(2, &cyc, &[0]),
            Err(LongestPathError::PositiveCycle(vec![0, 1]))
        );
        assert_eq!(scratch.run(2, &e2, &[0]).unwrap(), &[0, -5]);
    }
}
