//! Shortest and longest path computations.
//!
//! Two path problems underpin the paper's label machinery:
//!
//! * **Maximum forward retiming values** (Lemma 1): `frt(v)` is the minimum
//!   path *weight* (flip-flop count) over all paths from any PI to `v` — a
//!   multi-source shortest path problem with non-negative weights, solved by
//!   [`dijkstra`].
//! * **l-values** (Theorem 1): `l(v)` is the maximum path *length* from any
//!   PI to `v` where each edge `e(u,v)` has length `d(v) − Φ·w(e)`. The
//!   retiming graph is cyclic, so this is a Bellman–Ford-style longest path
//!   with positive cycles signalling infeasibility, solved by
//!   [`longest_paths`].

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Sentinel for "unreachable" in longest-path results (acts as `−∞`).
pub const NEG_INF: i64 = i64::MIN / 4;

/// Multi-source Dijkstra over an adjacency list with non-negative `u64`
/// weights.
///
/// Returns `dist[v] = None` for nodes unreachable from every source.
///
/// # Examples
///
/// ```
/// let adj = vec![
///     vec![(1, 0u64), (2, 2)], // node 0
///     vec![(2, 1)],            // node 1
///     vec![],                  // node 2
/// ];
/// let dist = graphalgo::paths::dijkstra(&adj, &[0]);
/// assert_eq!(dist, vec![Some(0), Some(0), Some(1)]);
/// ```
///
/// # Panics
///
/// Panics if a source or edge target is out of range.
pub fn dijkstra(adj: &[Vec<(usize, u64)>], sources: &[usize]) -> Vec<Option<u64>> {
    let n = adj.len();
    let mut dist: Vec<Option<u64>> = vec![None; n];
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    for &s in sources {
        assert!(s < n, "source out of range");
        if dist[s] != Some(0) {
            dist[s] = Some(0);
            heap.push(Reverse((0, s)));
        }
    }
    while let Some(Reverse((d, u))) = heap.pop() {
        if dist[u] != Some(d) {
            continue;
        }
        for &(v, w) in &adj[u] {
            let nd = d + w;
            if dist[v].is_none_or(|cur| nd < cur) {
                dist[v] = Some(nd);
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

/// Error from [`longest_paths`]: relaxation failed to converge, implying a
/// positive-length cycle reachable from a source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LongestPathError;

impl std::fmt::Display for LongestPathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "positive cycle reachable from a source")
    }
}

impl std::error::Error for LongestPathError {}

/// Longest paths from `sources` over possibly-cyclic graphs with `i64` edge
/// lengths (Bellman–Ford relaxation).
///
/// Source nodes start at length 0; all other nodes at [`NEG_INF`]. A node
/// that remains at `NEG_INF` is unreachable. Relaxation runs at most `n`
/// rounds; if the lengths still change afterwards there is a positive cycle
/// and `Err(LongestPathError)` is returned — for l-values this means the
/// target clock period `Φ` is infeasible.
///
/// # Errors
///
/// Returns [`LongestPathError`] when a positive-length cycle is reachable
/// from a source.
///
/// # Examples
///
/// ```
/// // 0 -> 1 (len 1), 1 -> 2 (len -3), 0 -> 2 (len 0)
/// let edges = [(0usize, 1usize, 1i64), (1, 2, -3), (0, 2, 0)];
/// let l = graphalgo::paths::longest_paths(3, &edges, &[0]).unwrap();
/// assert_eq!(l, vec![0, 1, 0]);
/// ```
pub fn longest_paths(
    n: usize,
    edges: &[(usize, usize, i64)],
    sources: &[usize],
) -> Result<Vec<i64>, LongestPathError> {
    let mut len = vec![NEG_INF; n];
    for &s in sources {
        assert!(s < n, "source out of range");
        len[s] = 0;
    }
    for round in 0..=n {
        let mut changed = false;
        for &(u, v, l) in edges {
            if len[u] > NEG_INF && len[u] + l > len[v] {
                len[v] = len[u] + l;
                changed = true;
            }
        }
        if !changed {
            return Ok(len);
        }
        if round == n {
            return Err(LongestPathError);
        }
    }
    Ok(len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dijkstra_multi_source_takes_min() {
        let adj = vec![vec![(2, 5u64)], vec![(2, 1)], vec![(3, 0)], vec![]];
        let dist = dijkstra(&adj, &[0, 1]);
        assert_eq!(dist, vec![Some(0), Some(0), Some(1), Some(1)]);
    }

    #[test]
    fn dijkstra_unreachable_is_none() {
        let adj = vec![vec![], vec![(0, 1u64)]];
        let dist = dijkstra(&adj, &[0]);
        assert_eq!(dist, vec![Some(0), None]);
    }

    #[test]
    fn dijkstra_zero_weight_cycle_ok() {
        // 0 -> 1 -> 2 -> 1 with zero weights must terminate.
        let adj = vec![vec![(1, 0u64)], vec![(2, 0)], vec![(1, 0)]];
        let dist = dijkstra(&adj, &[0]);
        assert_eq!(dist, vec![Some(0), Some(0), Some(0)]);
    }

    #[test]
    fn longest_path_on_dag() {
        // Classic: two paths to node 3, lengths 3 and 1.
        let edges = [(0, 1, 1), (1, 3, 2), (0, 2, 1), (2, 3, 0)];
        let l = longest_paths(4, &edges, &[0]).unwrap();
        assert_eq!(l[3], 3);
    }

    #[test]
    fn longest_path_negative_cycle_converges() {
        // Cycle 1 -> 2 -> 1 of total length -1: fine.
        let edges = [(0, 1, 1), (1, 2, 1), (2, 1, -2)];
        let l = longest_paths(3, &edges, &[0]).unwrap();
        assert_eq!(l, vec![0, 1, 2]);
    }

    #[test]
    fn longest_path_zero_cycle_converges() {
        let edges = [(0, 1, 1), (1, 2, 1), (2, 1, -1)];
        let l = longest_paths(3, &edges, &[0]).unwrap();
        assert_eq!(l[1], 1);
        assert_eq!(l[2], 2);
    }

    #[test]
    fn longest_path_positive_cycle_errors() {
        let edges = [(0, 1, 1), (1, 2, 1), (2, 1, 0)];
        assert_eq!(longest_paths(3, &edges, &[0]), Err(LongestPathError));
    }

    #[test]
    fn positive_cycle_unreachable_is_ignored() {
        // Cycle 1 <-> 2 positive but not reachable from source 0.
        let edges = [(1, 2, 1), (2, 1, 1)];
        let l = longest_paths(3, &edges, &[0]).unwrap();
        assert_eq!(l, vec![0, NEG_INF, NEG_INF]);
    }
}
