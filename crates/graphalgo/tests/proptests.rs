//! Randomized tests: the bounded max-flow equals the brute-force minimum
//! node cut on small random DAGs, and both cut extraction sides return
//! genuine minimum cuts. Deterministic (fixed seed via `engine::Rng64`).

use engine::Rng64;
use graphalgo::NodeCutNetwork;

/// A random DAG over `n` nodes: edge (i, j) for i < j kept with
/// probability 1/2.
fn random_dag(rng: &mut Rng64) -> (usize, Vec<(usize, usize)>) {
    let n = rng.range_usize(4, 9);
    let mut edges = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.chance(0.5) {
                edges.push((i, j));
            }
        }
    }
    (n, edges)
}

/// Brute force: the smallest set of intermediate nodes whose removal
/// disconnects `0` from `n-1` (`None` when even removing all of them
/// leaves a path, i.e. a direct source→sink edge exists).
fn brute_min_cut(n: usize, edges: &[(usize, usize)]) -> Option<usize> {
    let mids: Vec<usize> = (1..n - 1).collect();
    let connected = |removed: u32| -> bool {
        let mut reach = vec![false; n];
        reach[0] = true;
        let mut stack = vec![0usize];
        while let Some(u) = stack.pop() {
            for &(a, b) in edges {
                if a == u && !reach[b] {
                    let is_removed = mids
                        .iter()
                        .position(|&m| m == b)
                        .map(|i| removed >> i & 1 == 1)
                        .unwrap_or(false);
                    if !is_removed {
                        reach[b] = true;
                        stack.push(b);
                    }
                }
            }
        }
        reach[n - 1]
    };
    if !connected(0) {
        return Some(0);
    }
    for size in 1..=mids.len() {
        for removed in 0u32..(1 << mids.len()) {
            if removed.count_ones() as usize != size && size != 0 {
                continue;
            }
            if removed.count_ones() as usize == size && !connected(removed) {
                return Some(size);
            }
        }
    }
    None // direct edge 0 -> n-1
}

#[test]
fn max_flow_matches_brute_force() {
    let mut rng = Rng64::new(0xF10A);
    for case in 0..128 {
        let (n, edges) = random_dag(&mut rng);
        let expected = brute_min_cut(n, &edges);
        let mut net = NodeCutNetwork::new(n);
        for &(a, b) in &edges {
            net.add_edge(a, b);
        }
        let limit = n as u32 + 2;
        let res = net.max_flow(0, n - 1, limit);
        match expected {
            Some(size) => {
                assert!(!res.exceeded_limit, "case {case}");
                assert_eq!(res.flow as usize, size, "case {case}");
                // Both cut extractions return cuts of minimum size whose
                // removal disconnects.
                for cut in [net.min_cut(0), net.min_cut_near_sink(0)] {
                    assert_eq!(cut.cut_nodes.len(), size, "case {case}");
                    let removed: Vec<(usize, usize)> = edges
                        .iter()
                        .copied()
                        .filter(|&(a, b)| {
                            !cut.cut_nodes.contains(&a) && !cut.cut_nodes.contains(&b)
                        })
                        .collect();
                    assert_eq!(brute_min_cut(n, &removed), Some(0), "case {case}");
                }
            }
            None => {
                // Direct source→sink edge: no finite node cut.
                assert!(res.exceeded_limit, "case {case}");
            }
        }
    }
}
