//! Property tests: the bounded max-flow equals the brute-force minimum
//! node cut on small random DAGs, and both cut extraction sides return
//! genuine minimum cuts.

use graphalgo::NodeCutNetwork;
use proptest::prelude::*;

/// A random DAG over `n` nodes: edge (i, j) for i < j with density `p`.
fn dag_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (4usize..9).prop_flat_map(|n| {
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .collect();
        let len = pairs.len();
        (Just(n), Just(pairs), prop::collection::vec(prop::bool::ANY, len)).prop_map(
            |(n, pairs, mask)| {
                let edges = pairs
                    .into_iter()
                    .zip(mask)
                    .filter(|(_, keep)| *keep)
                    .map(|(e, _)| e)
                    .collect();
                (n, edges)
            },
        )
    })
}

/// Brute force: the smallest set of intermediate nodes whose removal
/// disconnects `0` from `n-1` (`None` when even removing all of them
/// leaves a path, i.e. a direct source→sink edge exists).
fn brute_min_cut(n: usize, edges: &[(usize, usize)]) -> Option<usize> {
    let mids: Vec<usize> = (1..n - 1).collect();
    let connected = |removed: u32| -> bool {
        let mut reach = vec![false; n];
        reach[0] = true;
        let mut stack = vec![0usize];
        while let Some(u) = stack.pop() {
            for &(a, b) in edges {
                if a == u && !reach[b] {
                    let is_removed = mids
                        .iter()
                        .position(|&m| m == b)
                        .map(|i| removed >> i & 1 == 1)
                        .unwrap_or(false);
                    if !is_removed {
                        reach[b] = true;
                        stack.push(b);
                    }
                }
            }
        }
        reach[n - 1]
    };
    if !connected(0) {
        return Some(0);
    }
    for size in 1..=mids.len() {
        for removed in 0u32..(1 << mids.len()) {
            if removed.count_ones() as usize != size && size != 0 {
                continue;
            }
            if removed.count_ones() as usize == size && !connected(removed) {
                return Some(size);
            }
        }
    }
    None // direct edge 0 -> n-1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn max_flow_matches_brute_force((n, edges) in dag_strategy()) {
        let expected = brute_min_cut(n, &edges);
        let mut net = NodeCutNetwork::new(n);
        for &(a, b) in &edges {
            net.add_edge(a, b);
        }
        let limit = n as u32 + 2;
        let res = net.max_flow(0, n - 1, limit);
        match expected {
            Some(size) => {
                prop_assert!(!res.exceeded_limit);
                prop_assert_eq!(res.flow as usize, size);
                // Both cut extractions return cuts of minimum size whose
                // removal disconnects.
                for cut in [net.min_cut(0), net.min_cut_near_sink(0)] {
                    prop_assert_eq!(cut.cut_nodes.len(), size);
                    let removed: Vec<(usize, usize)> = edges
                        .iter()
                        .copied()
                        .filter(|&(a, b)| {
                            !cut.cut_nodes.contains(&a) && !cut.cut_nodes.contains(&b)
                        })
                        .collect();
                    prop_assert_eq!(brute_min_cut(n, &removed), Some(0));
                }
            }
            None => {
                // Direct source→sink edge: no finite node cut.
                prop_assert!(res.exceeded_limit);
            }
        }
    }
}
