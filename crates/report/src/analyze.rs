//! Report assembly: run the mapper, re-probe the label system, extract
//! the Φ−1 infeasibility witness, and attribute timing on the mapped
//! network.

use std::collections::{BTreeMap, BTreeSet};

use engine::telemetry::{self, Counter};
use engine::{hist, JsonValue};
use graphalgo::paths::LongestPathError;
use netlist::{Circuit, NodeId};
use turbomap::{FrtContext, Options, TurboMapError, TurboMapResult, WitnessOutcome};

use crate::model::{LabelRow, NodeTiming, Report, RetimingSummary, WitnessKind, WitnessReport};

/// Errors from [`explain`].
#[derive(Debug)]
pub enum ReportError {
    /// The underlying mapping run failed.
    Map(TurboMapError),
    /// The run was cancelled through the thread's cancel token.
    Cancelled,
    /// An internal invariant of the report pipeline failed.
    Internal(String),
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportError::Map(e) => write!(f, "mapping: {e}"),
            ReportError::Cancelled => write!(f, "cancelled"),
            ReportError::Internal(msg) => write!(f, "internal: {msg}"),
        }
    }
}

impl std::error::Error for ReportError {}

/// A mapping run together with its report and the bounded network the
/// certificate is defined on.
#[derive(Debug)]
pub struct Explained {
    /// The assembled report.
    pub report: Report,
    /// The underlying mapping result (mapped circuit, period, counters).
    pub result: TurboMapResult,
    /// The prepared (fanin-bounded) source network — the graph a
    /// checker must replay the witness against.
    pub bounded: Circuit,
}

impl Explained {
    /// The rendered `turbomap-report/v1` document.
    pub fn to_json(&self) -> JsonValue {
        self.report.to_json()
    }
}

/// Maps a circuit with TurboMap-frt and assembles the full report:
/// Φ-optimality witness, timing attribution, label attribution, and the
/// retiming summary.
///
/// # Errors
///
/// [`ReportError::Map`] when the underlying mapping fails,
/// [`ReportError::Cancelled`] on external cancellation, and
/// [`ReportError::Internal`] when a pipeline invariant breaks (e.g. the
/// label system refuses the achieved period).
pub fn explain(source: &Circuit, opts: Options) -> Result<Explained, ReportError> {
    let result = turbomap::turbomap_frt(source, opts).map_err(|e| match e {
        TurboMapError::Cancelled => ReportError::Cancelled,
        other => ReportError::Map(other),
    })?;
    let bounded = turbomap::prepare(source, opts.k).map_err(ReportError::Map)?;
    let ctx = FrtContext::new(&bounded, opts.k, opts.weight_horizon);

    let (nodes, critical_path, period, slack_hist) = timing(&result.circuit)?;

    // The label system at the smallest feasible Φ at or above the
    // achieved period. They coincide in practice; the generated network
    // can in principle beat the simple-solution bound (the paper's
    // Fig. 2 effect), in which case the labels live at the search Φ.
    let mut phi_labels = period;
    let mut probe = ctx.check(phi_labels);
    while !probe.feasible {
        if engine::cancel::cancelled() {
            return Err(ReportError::Cancelled);
        }
        phi_labels += 1;
        if phi_labels > period + 64 {
            return Err(ReportError::Internal(format!(
                "label system infeasible for every Φ in {period}..={phi_labels}"
            )));
        }
        probe = ctx.check(phi_labels);
    }

    // Witness for the refuted period (achieved period − 1). Any period
    // below the label system's Φ is infeasible by monotonicity, so the
    // probe must land on a derivation unless a horizon capped the run.
    let (kind, steps) = if period == 0 {
        (
            WitnessKind::Unavailable(
                "the mapped network has no combinational depth (period 0)".to_string(),
            ),
            Vec::new(),
        )
    } else {
        match ctx.infeasibility_witness(period - 1) {
            WitnessOutcome::Infeasible(steps) => (WitnessKind::Derivation, steps),
            WitnessOutcome::Feasible => (
                WitnessKind::Unavailable(
                    "probe at period − 1 converged feasibly (achieved period beats the \
                     simple-solution bound)"
                        .to_string(),
                ),
                Vec::new(),
            ),
            WitnessOutcome::Capped => (
                WitnessKind::Unavailable(
                    "frt/expansion horizon capped; cone arithmetic would not replay".to_string(),
                ),
                Vec::new(),
            ),
            WitnessOutcome::IterationCap => (
                WitnessKind::Unavailable("label iteration cap reached".to_string()),
                Vec::new(),
            ),
            WitnessOutcome::Cancelled => return Err(ReportError::Cancelled),
        }
    };
    let mut referenced: BTreeSet<u32> = BTreeSet::new();
    for step in &steps {
        referenced.insert(step.node().0);
        if let turbomap::WitnessStep::Fanin { from, .. } = step {
            referenced.insert(from.0);
        }
    }
    let node_names: Vec<(u32, String)> = referenced
        .into_iter()
        .map(|id| (id, bounded.node(NodeId(id)).name().to_string()))
        .collect();

    let (critical_cycle, cycle_delay, cycle_weight) = critical_cycle(&result.circuit, period);

    // Per-gate label attribution plus planner demand bounds on the roots.
    let plan = turbomap::plan_mapping(
        &bounded,
        |v| ctx.expanded(v),
        &probe.labels.ls,
        phi_labels,
        opts.k,
        |v| ctx.frt[v.index()],
        true,
    );
    let phi_i = phi_labels as i64;
    let labels: Vec<LabelRow> = bounded
        .gate_ids()
        .map(|v| {
            let ls = probe.labels.ls[v.index()];
            let r = probe.labels.r[v.index()];
            let (rb, rb_slack, lag) = match plan.rb.get(&v) {
                Some(&rb) => (Some(rb), Some(rb - ls), plan.rr.get(&v).copied()),
                None => (None, None, None),
            };
            LabelRow {
                id: v.0,
                name: bounded.node(v).name().to_string(),
                ls,
                r,
                label_slack: phi_i - (ls + phi_i * r as i64),
                rb,
                rb_slack,
                lag,
            }
        })
        .collect();

    let retiming = RetimingSummary {
        lag_min: plan.rr.values().copied().min().unwrap_or(0),
        lag_max: plan.rr.values().copied().max().unwrap_or(0),
        lag_nonzero: plan.rr.values().filter(|&&l| l != 0).count(),
        planned_roots: plan.roots.len(),
        forward_moves: result.moves.forward_moves as u64,
        backward_moves: result.moves.backward_moves as u64,
        initial_state_lost: result.initial_state_lost,
        sharing_conflict: result.sharing_conflict,
    };

    telemetry::count(Counter::ReportsGenerated, 1);
    for n in &nodes {
        telemetry::record(hist::Metric::NodeSlack, n.slack);
    }
    if matches!(kind, WitnessKind::Derivation) {
        telemetry::record(hist::Metric::WitnessSteps, steps.len() as u64);
    }
    if !critical_cycle.is_empty() {
        telemetry::record(hist::Metric::WitnessCycleLen, critical_cycle.len() as u64);
    }

    let report = Report {
        name: source.name().to_string(),
        k: opts.k,
        phi: result.period,
        phi_labels,
        luts: result.luts,
        ffs: result.ffs,
        star: result.star(),
        probes: result.iterations.clone(),
        witness: WitnessReport {
            phi_tested: period.saturating_sub(1),
            kind,
            steps,
            node_names,
            critical_cycle,
            cycle_delay,
            cycle_weight,
        },
        period,
        nodes,
        critical_path,
        slack_hist,
        labels,
        retiming,
    };
    Ok(Explained {
        report,
        result,
        bounded,
    })
}

/// Arrival-time attribution on the mapped network, mirroring the
/// unit-delay clock-period recurrence: per-gate depth and slack, one
/// deterministic critical path, and the slack histogram.
#[allow(clippy::type_complexity)]
fn timing(
    mapped: &Circuit,
) -> Result<(Vec<NodeTiming>, Vec<String>, u64, Vec<(u64, u64)>), ReportError> {
    let order = mapped
        .comb_topo_order()
        .map_err(|e| ReportError::Internal(format!("mapped network: {e}")))?;
    let mut arrival = vec![0u64; mapped.num_nodes()];
    let mut period = 0u64;
    for v in order {
        let node = mapped.node(v);
        let mut best = 0u64;
        for &e in node.fanin() {
            let edge = mapped.edge(e);
            if edge.weight() == 0 {
                best = best.max(arrival[edge.from().index()]);
            }
        }
        arrival[v.index()] = best + node.delay();
        period = period.max(arrival[v.index()]);
    }
    let nodes: Vec<NodeTiming> = mapped
        .gate_ids()
        .map(|v| NodeTiming {
            id: v.0,
            name: mapped.node(v).name().to_string(),
            depth: arrival[v.index()],
            slack: period - arrival[v.index()],
        })
        .collect();
    let mut slack_counts: BTreeMap<u64, u64> = BTreeMap::new();
    for n in &nodes {
        *slack_counts.entry(n.slack).or_insert(0) += 1;
    }
    // One critical path: start at the smallest-id node of maximal depth,
    // walk zero-weight fanins picking the deepest (smallest id on ties).
    let mut path = Vec::new();
    if period > 0 {
        let mut v = mapped
            .node_ids()
            .find(|&v| arrival[v.index()] == period)
            .expect("some node achieves the period");
        path.push(v);
        loop {
            let mut best: Option<NodeId> = None;
            for &e in mapped.node(v).fanin() {
                let edge = mapped.edge(e);
                if edge.weight() != 0 {
                    continue;
                }
                let u = edge.from();
                let better = match best {
                    None => true,
                    Some(b) => {
                        arrival[u.index()] > arrival[b.index()]
                            || (arrival[u.index()] == arrival[b.index()] && u.0 < b.0)
                    }
                };
                if better {
                    best = Some(u);
                }
            }
            match best {
                Some(u) => {
                    path.push(u);
                    v = u;
                }
                None => break,
            }
        }
        path.reverse();
    }
    let path_names = path
        .into_iter()
        .map(|v| mapped.node(v).name().to_string())
        .collect();
    Ok((
        nodes,
        path_names,
        period,
        slack_counts.into_iter().collect(),
    ))
}

/// Critical cycle of the mapped network at `period − 1`, when one is
/// reachable from the PIs: the cycle that certifies the period cannot
/// be lowered by retiming alone (`d(C) > (period−1)·w(C)`).
fn critical_cycle(mapped: &Circuit, period: u64) -> (Vec<String>, u64, u64) {
    if period == 0 {
        return (Vec::new(), 0, 0);
    }
    let p = (period - 1) as i64;
    let edges: Vec<(usize, usize, i64)> = mapped
        .edge_ids()
        .map(|e| {
            let edge = mapped.edge(e);
            (
                edge.from().index(),
                edge.to().index(),
                mapped.node(edge.to()).delay() as i64 - p * edge.weight() as i64,
            )
        })
        .collect();
    let sources: Vec<usize> = mapped.inputs().iter().map(|n| n.index()).collect();
    match graphalgo::paths::longest_paths(mapped.num_nodes(), &edges, &sources) {
        Err(LongestPathError::PositiveCycle(cycle)) => {
            let mut delay = 0u64;
            let mut weight = 0u64;
            for (i, &a) in cycle.iter().enumerate() {
                let b = cycle[(i + 1) % cycle.len()];
                let hop = mapped
                    .node(NodeId(a as u32))
                    .fanout()
                    .iter()
                    .filter(|&&e| mapped.edge(e).to().index() == b)
                    .map(|&e| mapped.edge(e).weight() as u64)
                    .min()
                    .unwrap_or(0);
                weight += hop;
                delay += mapped.node(NodeId(b as u32)).delay();
            }
            let names = cycle
                .iter()
                .map(|&i| mapped.node(NodeId(i as u32)).name().to_string())
                .collect();
            (names, delay, weight)
        }
        _ => (Vec::new(), 0, 0),
    }
}
