//! Mapping reports: Φ-optimality certificates and timing attribution.
//!
//! TurboMap-frt answers "the minimum clock period is Φ" — this crate
//! makes the answer *inspectable*. [`explain`] runs the mapper and
//! assembles a [`Report`](model::Report) with two halves:
//!
//! * **Certificate** — a replayable derivation log proving that Φ−1 is
//!   infeasible (no simple FRT mapping solution exists at that period),
//!   extracted from a serial re-run of the label fixpoint, plus the
//!   critical cycle of the mapped network when the refutation is
//!   cycle-shaped.
//! * **Attribution** — per-LUT depth and slack (`period − arrival`),
//!   one critical path, per-gate label pairs `(l^s, r)` with planner
//!   demand bounds `rb`, and the retiming / initial-state summary.
//!
//! [`checker::verify`] replays a rendered report **independently** — its
//! own Dijkstra for `frt`, its own cone expansion, its own max-flow —
//! so the Φ lower bound is established without trusting the mapper's
//! arithmetic. The document schema is `turbomap-report/v1`
//! ([`model::SCHEMA`]); rendering is deterministic (no timestamps, no
//! worker-dependent data), so report bytes are reproducible across
//! `--sweep-workers` settings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod checker;
pub mod model;

pub use analyze::{explain, Explained, ReportError};
pub use checker::{verify, CheckSummary, WitnessVerdict};
pub use model::{parse_witness, Report, WitnessKind, SCHEMA};

#[cfg(test)]
mod tests {
    use super::*;
    use engine::JsonValue;
    use netlist::Circuit;
    use turbomap::Options;

    fn explain_and_verify(c: &Circuit, k: usize) -> (Explained, CheckSummary) {
        let explained = explain(c, Options::with_k(k)).expect("explain");
        let doc = explained.to_json().render_pretty();
        let parsed = JsonValue::parse(&doc).expect("rendered report parses back");
        let summary = verify(&parsed, c, &explained.result.circuit).expect("verification");
        (explained, summary)
    }

    /// The paper's Fig. 1 circuit: the witness must replay through the
    /// independent checker after a JSON round trip.
    #[test]
    fn fig1_report_verifies_end_to_end() {
        let c = workloads::figures::fig1_circuit(true);
        let (explained, summary) = explain_and_verify(&c, 3);
        assert!(explained.result.period > 0);
        match summary.witness {
            WitnessVerdict::Verified {
                steps,
                terminal_value,
                ..
            } => {
                assert!(steps > 0);
                assert!(terminal_value > explained.report.witness.phi_tested as i64);
            }
            WitnessVerdict::Unavailable { ref reason } => {
                panic!("expected a verified witness, got unavailable: {reason}")
            }
        }
        assert_eq!(summary.nodes_checked, explained.result.luts);
    }

    /// Slack invariants hold on a batch of table-1 circuits: the minimum
    /// slack is exactly 0 (a critical node exists) and every slack is
    /// non-negative by construction — re-derived by the checker.
    #[test]
    fn small_suite_reports_verify() {
        for (preset, c) in workloads::table1_suite_small(120) {
            let (explained, summary) = explain_and_verify(&c, 5);
            assert!(
                matches!(summary.witness, WitnessVerdict::Verified { .. }),
                "{}: witness did not verify",
                preset.name
            );
            let min_slack = explained.report.nodes.iter().map(|n| n.slack).min();
            assert_eq!(min_slack, Some(0), "{}: no critical node", preset.name);
        }
    }

    /// Report JSON is deterministic across sweep-worker settings: the
    /// probe sequence, labels, witness, and timing may not depend on
    /// scheduling.
    #[test]
    fn report_bytes_identical_across_workers() {
        let c = workloads::figures::fig2_circuit();
        let mut opts = Options::with_k(3);
        opts.sweep_workers = 1;
        let serial = explain(&c, opts).expect("serial").to_json().render_pretty();
        opts.sweep_workers = 4;
        let parallel = explain(&c, opts)
            .expect("parallel")
            .to_json()
            .render_pretty();
        assert_eq!(serial, parallel);
    }

    /// A tampered derivation step must be rejected — the checker may not
    /// accept a witness whose arithmetic does not hold.
    #[test]
    fn tampered_witness_is_rejected() {
        let c = workloads::figures::fig1_circuit(true);
        let explained = explain(&c, Options::with_k(3)).expect("explain");
        let mut doc = explained.to_json();
        // Inflate the last step's claimed value beyond what its rule
        // supports.
        if let JsonValue::Object(pairs) = &mut doc {
            let witness = &mut pairs
                .iter_mut()
                .find(|(k, _)| k == "witness")
                .expect("witness")
                .1;
            if let JsonValue::Object(wpairs) = witness {
                let steps = &mut wpairs
                    .iter_mut()
                    .find(|(k, _)| k == "steps")
                    .expect("steps")
                    .1;
                if let JsonValue::Array(items) = steps {
                    let last = items.last_mut().expect("non-empty");
                    if let JsonValue::Object(spairs) = last {
                        for (k, v) in spairs.iter_mut() {
                            if k == "value" {
                                *v = JsonValue::Int(1_000);
                            }
                        }
                    }
                }
            }
        }
        let err = verify(&doc, &c, &explained.result.circuit)
            .expect_err("tampered step must be rejected");
        assert!(err.contains("step"), "unhelpful error: {err}");
    }

    /// Tampered timing (a wrong slack entry) must be rejected.
    #[test]
    fn tampered_slack_is_rejected() {
        let c = workloads::figures::fig1_circuit(true);
        let explained = explain(&c, Options::with_k(3)).expect("explain");
        let mut doc = explained.to_json();
        if let JsonValue::Object(pairs) = &mut doc {
            let timing = &mut pairs
                .iter_mut()
                .find(|(k, _)| k == "timing")
                .expect("timing")
                .1;
            if let JsonValue::Object(tpairs) = timing {
                let nodes = &mut tpairs
                    .iter_mut()
                    .find(|(k, _)| k == "nodes")
                    .expect("nodes")
                    .1;
                if let JsonValue::Array(items) = nodes {
                    if let Some(JsonValue::Object(spairs)) = items.first_mut() {
                        for (k, v) in spairs.iter_mut() {
                            if k == "slack" {
                                *v = JsonValue::UInt(999);
                            }
                        }
                    }
                }
            }
        }
        verify(&doc, &c, &explained.result.circuit).expect_err("tampered slack must be rejected");
    }

    /// The human rendering mentions the headline quantities.
    #[test]
    fn human_table_mentions_headlines() {
        let c = workloads::figures::fig1_circuit(true);
        let explained = explain(&c, Options::with_k(3)).expect("explain");
        let table = explained.report.render_table();
        assert!(table.contains("Φ-optimality"));
        assert!(table.contains("timing attribution"));
        assert!(table.contains("retiming & initial state"));
    }

    /// A register-bound circuit (critical cycle) yields a cycle witness
    /// the checker re-verifies arithmetically.
    #[test]
    fn cycle_bound_circuit_reports_cycle() {
        // Three 2-input gates in a register loop, each mixing in a fresh
        // PI: at K=2 no LUT absorbs two loop gates, so the loop stays
        // 3 LUTs over 1 register and the cycle forces Φ ≥ ⌈d(C)/w(C)⌉ = 3.
        use netlist::{Bit, TruthTable};
        let mut c = Circuit::new("loop3");
        let a1 = c.add_input("a1").unwrap();
        let a2 = c.add_input("a2").unwrap();
        let a3 = c.add_input("a3").unwrap();
        let g1 = c.add_gate("g1", TruthTable::xor(2)).unwrap();
        let g2 = c.add_gate("g2", TruthTable::and(2)).unwrap();
        let g3 = c.add_gate("g3", TruthTable::or(2)).unwrap();
        let po = c.add_output("po").unwrap();
        c.connect(a1, g1, vec![]).unwrap();
        c.connect(g3, g1, vec![Bit::Zero]).unwrap();
        c.connect(a2, g2, vec![]).unwrap();
        c.connect(g1, g2, vec![]).unwrap();
        c.connect(a3, g3, vec![]).unwrap();
        c.connect(g2, g3, vec![]).unwrap();
        c.connect(g3, po, vec![]).unwrap();
        let (explained, summary) = explain_and_verify(&c, 2);
        assert!(explained.result.period >= 3);
        assert!(
            summary.cycle_checked,
            "expected a critical-cycle witness on a register-bound loop"
        );
    }
}
