//! Independent certificate checker.
//!
//! Verifies a rendered `turbomap-report/v1` document **without trusting
//! the mapper**: every quantity a witness step relies on is recomputed
//! here from scratch — `frt(v)` by a fresh Dijkstra over the register
//! weights, replicated cones by a fresh `(node, weight)` expansion, and
//! cut existence by a fresh node-split max-flow. The only trusted
//! boundary is the `netlist` graph representation itself (node/edge
//! accessors) and `turbomap::prepare`, which derives the bounded network
//! the labels are defined on.
//!
//! The derivation log is replayed in order against a label vector `cur`
//! (PIs 0, everything else −∞). Each step must satisfy its rule's side
//! condition before its value is applied:
//!
//! * `fanin` — the claimed edge must exist with the claimed weight and
//!   `value ≤ cur(from) − P·weight` (edge inequality of Corollary 1);
//! * `no_cut` — no K-feasible cut of height ≤ `height` may exist in the
//!   replicated cone `F_v^{frt(v)}` under the current labels, and
//!   `value ≤ height + 1`;
//! * `weight_bump` — the cut-weight escape hatch: `height + P·w_min > P`
//!   must hold, no cut may exist when the cone is restricted to weight
//!   `w_min − 1`, and (consistency) one must exist at weight `w_min`.
//!
//! Lower bounds derived against *smaller* labels stay sound — cut
//! heights only grow as labels grow — so replay order equals recording
//! order is sufficient, not just necessary. The log certifies
//! infeasibility when some node's label exceeds `P`.

use std::collections::HashMap;
use std::collections::VecDeque;

use engine::JsonValue;
use netlist::{Circuit, NodeId};
use turbomap::WitnessStep;

use crate::model::{self, ParsedWitness};

/// Mirror of the mapper's −∞ sentinel (headroom for label arithmetic).
const NEG_INF: i64 = i64::MIN / 4;

/// Replicated-cone size cap; expansions beyond it make the check fail
/// as inconclusive rather than silently pass.
const MAX_EXPANDED: usize = 500_000;

/// Outcome of the witness portion of a check.
#[derive(Debug, Clone)]
pub enum WitnessVerdict {
    /// The derivation log replayed cleanly and refutes `phi_tested`.
    Verified {
        /// Steps replayed.
        steps: usize,
        /// Node whose label exceeded the refuted period.
        terminal_node: String,
        /// Its final label.
        terminal_value: i64,
    },
    /// The report carries no derivation (e.g. horizon-capped run).
    Unavailable {
        /// Reason recorded in the report.
        reason: String,
    },
}

/// Successful check result.
#[derive(Debug, Clone)]
pub struct CheckSummary {
    /// Witness outcome.
    pub witness: WitnessVerdict,
    /// Mapped nodes whose depth/slack entries were re-derived and matched.
    pub nodes_checked: usize,
    /// Length of the verified critical path.
    pub critical_path_len: usize,
    /// Whether a critical cycle was present and its arithmetic re-verified.
    pub cycle_checked: bool,
}

/// A replicated cone `F_v^{bound}`: nodes are `(source node, path
/// weight)` pairs, index 0 is the root `(v, 0)`.
struct Cone {
    nodes: Vec<(u32, u64)>,
    fanins: Vec<Vec<u32>>,
    is_leaf: Vec<bool>,
}

/// Min register weight of any PI→v path, by Dijkstra over the full
/// edge set. `None` = unreachable from the PIs.
fn checker_frt(c: &Circuit) -> Vec<Option<u64>> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = c.num_nodes();
    let adj = c.weighted_adjacency();
    let mut dist: Vec<Option<u64>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    for &pi in c.inputs() {
        dist[pi.index()] = Some(0);
        heap.push(Reverse((0u64, pi.index())));
    }
    while let Some(Reverse((d, v))) = heap.pop() {
        if dist[v] != Some(d) {
            continue;
        }
        for &(t, w) in &adj[v] {
            let nd = d + w;
            if dist[t].is_none_or(|old| nd < old) {
                dist[t] = Some(nd);
                heap.push(Reverse((nd, t)));
            }
        }
    }
    dist
}

/// Expands `F_root^{bound}` breadth-first over `(node, weight)` pairs.
fn expand_cone(c: &Circuit, root: NodeId, bound: u64) -> Result<Cone, String> {
    let mut index: HashMap<(u32, u64), usize> = HashMap::new();
    let mut nodes = vec![(root.0, 0u64)];
    let mut is_leaf = vec![false];
    let mut fanins: Vec<Vec<u32>> = vec![Vec::new()];
    index.insert((root.0, 0), 0);
    let mut i = 0;
    while i < nodes.len() {
        if nodes.len() > MAX_EXPANDED {
            return Err(format!(
                "cone of {} exceeds the {MAX_EXPANDED}-node expansion cap",
                c.node(root).name()
            ));
        }
        let (v, w) = nodes[i];
        if !is_leaf[i] {
            for &e in c.node(NodeId(v)).fanin() {
                let edge = c.edge(e);
                let cw = w + edge.weight() as u64;
                let u = edge.from();
                let leaf = !c.node(u).is_gate() || cw > bound;
                let idx = *index.entry((u.0, cw)).or_insert_with(|| {
                    nodes.push((u.0, cw));
                    is_leaf.push(leaf);
                    fanins.push(Vec::new());
                    nodes.len() - 1
                });
                fanins[i].push(idx as u32);
            }
        }
        i += 1;
    }
    Ok(Cone {
        nodes,
        fanins,
        is_leaf,
    })
}

/// Whether a K-feasible cut of height ≤ `height` exists in the cone
/// restricted to path weight ≤ `w_bound`, under the labels `cur`.
///
/// Node-split max-flow: node `i ≠ root` gets capacity 1 when its value
/// `cur(node) − P·weight + 1 ≤ height` (it may sit in the cut) and ∞
/// otherwise; structural arcs are ∞; the source feeds every effective
/// leaf (`is_leaf` or weight > `w_bound`). A cut exists iff max flow
/// stays ≤ K, so augmentation stops after K+1 paths.
fn cut_exists(cone: &Cone, cur: &[i64], phi: i64, height: i64, w_bound: u64, k: usize) -> bool {
    let n = cone.nodes.len();
    let inf = (k + 2) as i64;
    // Graph nodes: in(i) = 2i, out(i) = 2i+1, source = 2n; sink = in(0).
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); 2 * n + 1];
    let mut eto: Vec<usize> = Vec::new();
    let mut ecap: Vec<i64> = Vec::new();
    let mut add = |adj: &mut Vec<Vec<usize>>, from: usize, to: usize, cap: i64| {
        adj[from].push(eto.len());
        eto.push(to);
        ecap.push(cap);
        adj[to].push(eto.len());
        eto.push(from);
        ecap.push(0);
    };
    let effective_leaf = |i: usize| cone.is_leaf[i] || cone.nodes[i].1 > w_bound;
    for i in 0..n {
        let (node, weight) = cone.nodes[i];
        if i != 0 {
            let value = cur[node as usize] - phi * weight as i64 + 1;
            let cap = if value <= height { 1 } else { inf };
            add(&mut adj, 2 * i, 2 * i + 1, cap);
        }
        if effective_leaf(i) {
            add(&mut adj, 2 * n, 2 * i, inf);
        } else {
            for &j in &cone.fanins[i] {
                add(&mut adj, 2 * j as usize + 1, 2 * i, inf);
            }
        }
    }
    let source = 2 * n;
    let sink = 0usize;
    let mut flow = 0i64;
    let mut prev = vec![usize::MAX; 2 * n + 1];
    while flow <= k as i64 {
        // BFS for an augmenting path in the residual graph.
        prev.iter_mut().for_each(|p| *p = usize::MAX);
        let mut queue = VecDeque::new();
        queue.push_back(source);
        prev[source] = usize::MAX - 1;
        let mut reached = false;
        while let Some(v) = queue.pop_front() {
            if v == sink {
                reached = true;
                break;
            }
            for &e in &adj[v] {
                let t = eto[e];
                if ecap[e] > 0 && prev[t] == usize::MAX {
                    prev[t] = e;
                    queue.push_back(t);
                }
            }
        }
        if !reached {
            return true; // max flow ≤ K — a K-feasible cut exists
        }
        // Bottleneck and augment.
        let mut bottleneck = i64::MAX;
        let mut v = sink;
        while v != source {
            let e = prev[v];
            bottleneck = bottleneck.min(ecap[e]);
            v = eto[e ^ 1];
        }
        let mut v = sink;
        while v != source {
            let e = prev[v];
            ecap[e] -= bottleneck;
            ecap[e ^ 1] += bottleneck;
            v = eto[e ^ 1];
        }
        flow += bottleneck;
    }
    false // flow exceeded K — every cut is wider than K
}

/// Replays a derivation log against the bounded source network.
struct Replay<'a> {
    c: &'a Circuit,
    phi: i64,
    k: usize,
    frt: Vec<Option<u64>>,
    cur: Vec<i64>,
    cones: HashMap<u32, Cone>,
}

impl<'a> Replay<'a> {
    fn new(c: &'a Circuit, phi: u64, k: usize) -> Replay<'a> {
        let mut cur = vec![NEG_INF; c.num_nodes()];
        for &pi in c.inputs() {
            cur[pi.index()] = 0;
        }
        Replay {
            c,
            phi: phi as i64,
            k,
            frt: checker_frt(c),
            cur,
            cones: HashMap::new(),
        }
    }

    fn cone(&mut self, node: NodeId) -> Result<(&Cone, u64), String> {
        let frt = self.frt[node.index()].ok_or_else(|| {
            format!(
                "{}: cut rule on a node unreachable from the PIs",
                self.c.node(node).name()
            )
        })?;
        if !self.cones.contains_key(&node.0) {
            let cone = expand_cone(self.c, node, frt)?;
            self.cones.insert(node.0, cone);
        }
        Ok((&self.cones[&node.0], frt))
    }

    fn check_step(&mut self, idx: usize, step: &WitnessStep) -> Result<(), String> {
        let n = self.c.num_nodes();
        let fail = |msg: String| -> Result<(), String> { Err(format!("step {idx}: {msg}")) };
        let node = step.node();
        if node.index() >= n {
            return fail(format!("node id {} out of range", node.0));
        }
        if self.c.node(node).is_input() {
            return fail("derivation step targets a primary input".into());
        }
        match *step {
            WitnessStep::Fanin {
                node,
                from,
                weight,
                value,
            } => {
                if from.index() >= n {
                    return fail(format!("fanin id {} out of range", from.0));
                }
                let exists = self.c.node(node).fanin().iter().any(|&e| {
                    let edge = self.c.edge(e);
                    edge.from() == from && edge.weight() as u64 == weight
                });
                if !exists {
                    return fail(format!(
                        "no edge {} -> {} with weight {weight}",
                        self.c.node(from).name(),
                        self.c.node(node).name()
                    ));
                }
                if self.cur[from.index()] <= NEG_INF {
                    return fail(format!(
                        "derives from unreached node {}",
                        self.c.node(from).name()
                    ));
                }
                let bound = self.cur[from.index()] - self.phi * weight as i64;
                if value > bound {
                    return fail(format!(
                        "fanin value {value} exceeds l^s(from) − P·w = {bound}"
                    ));
                }
            }
            WitnessStep::NoCut {
                node,
                height,
                value,
            } => {
                if !self.c.node(node).is_gate() {
                    return fail("cut rule on a non-gate".into());
                }
                if value > height + 1 {
                    return fail(format!(
                        "no_cut value {value} exceeds height+1 = {}",
                        height + 1
                    ));
                }
                let phi = self.phi;
                let k = self.k;
                let cur = std::mem::take(&mut self.cur);
                let result = {
                    let (cone, frt) = match self.cone(node) {
                        Ok(c) => c,
                        Err(e) => {
                            self.cur = cur;
                            return fail(e);
                        }
                    };
                    cut_exists(cone, &cur, phi, height, frt, k)
                };
                self.cur = cur;
                if result {
                    return fail(format!(
                        "{}: a K-feasible cut of height ≤ {height} exists at the full frt bound",
                        self.c.node(node).name()
                    ));
                }
            }
            WitnessStep::WeightBump {
                node,
                height,
                w_min,
                value,
            } => {
                if !self.c.node(node).is_gate() {
                    return fail("cut rule on a non-gate".into());
                }
                if value > height + 1 {
                    return fail(format!(
                        "weight_bump value {value} exceeds height+1 = {}",
                        height + 1
                    ));
                }
                if height + self.phi * w_min as i64 <= self.phi {
                    return fail(format!(
                        "weight_bump precondition fails: {height} + P·{w_min} ≤ P = {}",
                        self.phi
                    ));
                }
                let phi = self.phi;
                let k = self.k;
                let cur = std::mem::take(&mut self.cur);
                let result = (|| -> Result<(), String> {
                    let (cone, frt) = self.cone(node)?;
                    if w_min > frt {
                        return Err(format!("claimed w_min {w_min} exceeds frt bound {frt}"));
                    }
                    if w_min > 0 && cut_exists(cone, &cur, phi, height, w_min - 1, k) {
                        return Err(format!(
                            "a K-feasible cut of height ≤ {height} exists below weight {w_min}"
                        ));
                    }
                    if !cut_exists(cone, &cur, phi, height, w_min, k) {
                        return Err(format!(
                            "no K-feasible cut of height ≤ {height} exists at weight {w_min}"
                        ));
                    }
                    Ok(())
                })();
                self.cur = cur;
                if let Err(e) = result {
                    return fail(format!("{}: {e}", self.c.node(node).name()));
                }
            }
        }
        if step.value() > self.cur[node.index()] {
            self.cur[node.index()] = step.value();
        }
        Ok(())
    }

    fn run(&mut self, steps: &[WitnessStep]) -> Result<(String, i64), String> {
        if steps.is_empty() {
            return Err("derivation witness has no steps".into());
        }
        for (idx, step) in steps.iter().enumerate() {
            self.check_step(idx, step)?;
        }
        let last = steps.last().expect("non-empty");
        let terminal = self.cur[last.node().index()];
        if terminal <= self.phi {
            return Err(format!(
                "derivation terminates at l^s = {terminal} ≤ P = {}; nothing is refuted",
                self.phi
            ));
        }
        Ok((self.c.node(last.node()).name().to_string(), terminal))
    }
}

/// Arrival times over the zero-weight subgraph by an own Kahn topo sort
/// (mirrors the unit-delay clock-period recurrence).
fn arrivals(c: &Circuit) -> Result<(Vec<u64>, u64), String> {
    let n = c.num_nodes();
    let mut indeg = vec![0usize; n];
    let mut zero_out: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in c.edge_ids() {
        let edge = c.edge(e);
        if edge.weight() == 0 {
            indeg[edge.to().index()] += 1;
            zero_out[edge.from().index()].push(edge.to().index());
        }
    }
    let mut queue: VecDeque<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
    let mut arrival = vec![0u64; n];
    let mut period = 0u64;
    let mut seen = 0usize;
    while let Some(v) = queue.pop_front() {
        seen += 1;
        let node = c.node(NodeId(v as u32));
        let mut best = 0u64;
        for &e in node.fanin() {
            let edge = c.edge(e);
            if edge.weight() == 0 {
                best = best.max(arrival[edge.from().index()]);
            }
        }
        arrival[v] = best + node.delay();
        period = period.max(arrival[v]);
        for &t in &zero_out[v] {
            indeg[t] -= 1;
            if indeg[t] == 0 {
                queue.push_back(t);
            }
        }
    }
    if seen != n {
        return Err("mapped network has a combinational cycle".into());
    }
    Ok((arrival, period))
}

fn field_u64(doc: &JsonValue, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("document missing `{key}`"))
}

/// Re-derives the timing section and compares it entry by entry.
fn check_timing(doc: &JsonValue, mapped: &Circuit) -> Result<(usize, usize, u64), String> {
    let timing = doc.get("timing").ok_or("document missing `timing`")?;
    let period = field_u64(timing, "period")?;
    let (arrival, computed) = arrivals(mapped)?;
    if period != computed {
        return Err(format!(
            "reported period {period} differs from recomputed {computed}"
        ));
    }
    let entries = timing
        .get("nodes")
        .and_then(JsonValue::as_array)
        .ok_or("timing missing `nodes`")?;
    let gates: Vec<NodeId> = mapped.gate_ids().collect();
    if entries.len() != gates.len() {
        return Err(format!(
            "timing lists {} nodes but the mapped network has {} gates",
            entries.len(),
            gates.len()
        ));
    }
    let mut min_slack = u64::MAX;
    for (entry, &gate) in entries.iter().zip(&gates) {
        let id = field_u64(entry, "id")?;
        if id != gate.0 as u64 {
            return Err(format!(
                "timing node id {id} out of order (expected {})",
                gate.0
            ));
        }
        let name = entry
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or("timing node missing `name`")?;
        if name != mapped.node(gate).name() {
            return Err(format!("timing node {id} name mismatch"));
        }
        let depth = field_u64(entry, "depth")?;
        let slack = field_u64(entry, "slack")?;
        if depth != arrival[gate.index()] {
            return Err(format!(
                "{name}: reported depth {depth} differs from recomputed {}",
                arrival[gate.index()]
            ));
        }
        if slack != period - depth {
            return Err(format!(
                "{name}: reported slack {slack} differs from period − depth = {}",
                period - depth
            ));
        }
        min_slack = min_slack.min(slack);
    }
    if !gates.is_empty() && min_slack != 0 {
        return Err(format!(
            "no critical node: minimum slack is {min_slack}, expected 0"
        ));
    }
    // Critical path: consecutive zero-weight edges ending at period depth.
    let path = timing
        .get("critical_path")
        .and_then(JsonValue::as_array)
        .ok_or("timing missing `critical_path`")?;
    let mut path_ids = Vec::new();
    for v in path {
        let name = v.as_str().ok_or("non-string critical-path entry")?;
        let id = mapped
            .find(name)
            .ok_or_else(|| format!("critical-path node `{name}` not in the mapped network"))?;
        path_ids.push(id);
    }
    if period > 0 {
        let last = *path_ids
            .last()
            .ok_or("critical path empty despite a non-zero period")?;
        if arrival[last.index()] != period {
            return Err(format!(
                "critical path ends at depth {}, period is {period}",
                arrival[last.index()]
            ));
        }
    }
    for pair in path_ids.windows(2) {
        let connected = mapped.node(pair[0]).fanout().iter().any(|&e| {
            let edge = mapped.edge(e);
            edge.to() == pair[1] && edge.weight() == 0
        });
        if !connected {
            return Err(format!(
                "critical path hop {} -> {} has no zero-weight edge",
                mapped.node(pair[0]).name(),
                mapped.node(pair[1]).name()
            ));
        }
    }
    Ok((gates.len(), path_ids.len(), period))
}

/// Re-verifies the critical-cycle arithmetic: the cycle must close over
/// real edges and satisfy `d(C) > P·w(C)` (taking the lightest edge per
/// hop, the selection most favorable to the claim and therefore sound).
fn check_cycle(witness: &ParsedWitness, mapped: &Circuit) -> Result<bool, String> {
    if witness.critical_cycle.is_empty() {
        return Ok(false);
    }
    let ids: Vec<NodeId> = witness
        .critical_cycle
        .iter()
        .map(|name| {
            mapped
                .find(name)
                .ok_or_else(|| format!("cycle node `{name}` not in the mapped network"))
        })
        .collect::<Result<_, _>>()?;
    let mut delay = 0u64;
    let mut weight = 0u64;
    for (i, &a) in ids.iter().enumerate() {
        let b = ids[(i + 1) % ids.len()];
        let hop = mapped
            .node(a)
            .fanout()
            .iter()
            .filter(|&&e| mapped.edge(e).to() == b)
            .map(|&e| mapped.edge(e).weight() as u64)
            .min()
            .ok_or_else(|| {
                format!(
                    "cycle hop {} -> {} has no edge",
                    mapped.node(a).name(),
                    mapped.node(b).name()
                )
            })?;
        weight += hop;
        delay += mapped.node(b).delay();
    }
    if delay != witness.cycle_delay || weight != witness.cycle_weight {
        return Err(format!(
            "cycle totals d = {delay}, w = {weight} differ from reported d = {}, w = {}",
            witness.cycle_delay, witness.cycle_weight
        ));
    }
    if delay <= witness.phi_tested * weight {
        return Err(format!(
            "cycle is not critical at P = {}: d = {delay} ≤ P·w = {}",
            witness.phi_tested,
            witness.phi_tested * weight
        ));
    }
    Ok(true)
}

/// Verifies a rendered `turbomap-report/v1` document against the source
/// and mapped networks.
///
/// # Errors
///
/// Any arithmetic mismatch, malformed section, or derivation step whose
/// side condition fails is returned as a message naming the offending
/// step or node.
pub fn verify(doc: &JsonValue, source: &Circuit, mapped: &Circuit) -> Result<CheckSummary, String> {
    match doc.get("schema").and_then(JsonValue::as_str) {
        Some(model::SCHEMA) => {}
        Some(other) => return Err(format!("unexpected schema `{other}`")),
        None => return Err("document missing `schema`".into()),
    }
    let k = field_u64(doc, "k")? as usize;
    let (nodes_checked, critical_path_len, period) = check_timing(doc, mapped)?;
    let witness = model::parse_witness(doc)?;
    let verdict = match &witness.steps {
        Some(steps) => {
            if period == 0 {
                return Err("derivation witness on a zero-period network".into());
            }
            if witness.phi_tested != period - 1 {
                return Err(format!(
                    "witness refutes {} but the mapped period is {period}; expected {}",
                    witness.phi_tested,
                    period - 1
                ));
            }
            let bounded = turbomap::prepare(source, k)
                .map_err(|e| format!("preparing the bounded network failed: {e}"))?;
            let mut replay = Replay::new(&bounded, witness.phi_tested, k);
            let (terminal_node, terminal_value) = replay.run(steps)?;
            WitnessVerdict::Verified {
                steps: steps.len(),
                terminal_node,
                terminal_value,
            }
        }
        None => WitnessVerdict::Unavailable {
            reason: witness.reason.clone(),
        },
    };
    let cycle_checked = check_cycle(&witness, mapped)?;
    Ok(CheckSummary {
        witness: verdict,
        nodes_checked,
        critical_path_len,
        cycle_checked,
    })
}
