//! The `turbomap-report/v1` document model.
//!
//! A [`Report`] is the explainable artifact of one TurboMap-frt run: the
//! Φ−1 infeasibility witness (certificate side) plus per-node timing
//! attribution (observability side). [`Report::to_json`] renders the
//! deterministic JSON document — insertion-ordered keys, node lists in id
//! order, nothing that varies with `--sweep-workers` — and
//! [`Report::render_table`] the human-readable summary.

use engine::JsonValue;
use netlist::NodeId;
use turbomap::WitnessStep;

/// Schema tag of the JSON document.
pub const SCHEMA: &str = "turbomap-report/v1";

/// Rows shown per node table in the human rendering (the JSON always
/// carries every node).
const TABLE_ROWS: usize = 40;

/// Whether a derivation witness is attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WitnessKind {
    /// A full replayable derivation log is attached.
    Derivation,
    /// No witness; the payload is the reason (e.g. the `frt` horizon was
    /// capped, so the log would not replay against true cone arithmetic).
    Unavailable(String),
}

/// The Φ-optimality certificate of a report.
#[derive(Debug, Clone)]
pub struct WitnessReport {
    /// The refuted period (the mapped network's period minus one).
    pub phi_tested: u64,
    /// Derivation log attached, or why not.
    pub kind: WitnessKind,
    /// Ordered derivation steps (empty when unavailable).
    pub steps: Vec<WitnessStep>,
    /// `(id, name)` of every node a step references, in id order.
    pub node_names: Vec<(u32, String)>,
    /// Critical cycle on the **mapped** network at `phi_tested` (node
    /// names in forward edge order), empty when the refutation is
    /// path-shaped rather than cycle-shaped.
    pub critical_cycle: Vec<String>,
    /// Total gate delay around the critical cycle.
    pub cycle_delay: u64,
    /// Total register weight around the critical cycle
    /// (`cycle_delay > phi_tested · cycle_weight` certifies it).
    pub cycle_weight: u64,
}

/// Timing attribution of one mapped LUT/PO.
#[derive(Debug, Clone)]
pub struct NodeTiming {
    /// Node id in the mapped network.
    pub id: u32,
    /// Node name in the mapped network.
    pub name: String,
    /// Combinational depth (LUT levels from the nearest register/PI).
    pub depth: u64,
    /// `period − depth` ≥ 0; 0 exactly on critical nodes.
    pub slack: u64,
}

/// Label attribution of one source gate (the prepared network the Φ
/// search ran on).
#[derive(Debug, Clone)]
pub struct LabelRow {
    /// Node id in the prepared source network.
    pub id: u32,
    /// Node name.
    pub name: String,
    /// Converged `l^s(v)` lower bound.
    pub ls: i64,
    /// Converged `r(v)` lower bound.
    pub r: u64,
    /// Corollary 1 margin `Φ − (l^s + Φ·r)` ≥ 0.
    pub label_slack: i64,
    /// Planner required bound `rb(v)` — only for planned roots.
    pub rb: Option<i64>,
    /// Planner slack `rb − l^s` ≥ 0 — only for planned roots.
    pub rb_slack: Option<i64>,
    /// Planned retiming lag `Ɍ(v)` — only for planned roots.
    pub lag: Option<i64>,
}

/// Retiming / initial-state summary.
#[derive(Debug, Clone)]
pub struct RetimingSummary {
    /// Minimum planned lag (0 when no roots).
    pub lag_min: i64,
    /// Maximum planned lag (0 when no roots).
    pub lag_max: i64,
    /// Planned roots with a non-zero lag.
    pub lag_nonzero: usize,
    /// Total planned roots.
    pub planned_roots: usize,
    /// Forward unit register moves of the final retiming.
    pub forward_moves: u64,
    /// Backward unit register moves (0 for TurboMap-frt by construction).
    pub backward_moves: u64,
    /// The paper's `⋆`: initial state erased to `X`.
    pub initial_state_lost: bool,
    /// Initial values inconsistent under register sharing.
    pub sharing_conflict: bool,
}

/// One full mapping report.
#[derive(Debug, Clone)]
pub struct Report {
    /// Source circuit name.
    pub name: String,
    /// LUT input bound.
    pub k: usize,
    /// The period reported by the mapper (`Φ`).
    pub phi: u64,
    /// The Φ the label system converged at (equals `phi` unless the
    /// generated network beat the simple-solution bound).
    pub phi_labels: u64,
    /// LUT count of the mapped network.
    pub luts: usize,
    /// FF count of the mapped network.
    pub ffs: usize,
    /// The paper's `⋆` outcome.
    pub star: bool,
    /// `(Φ, sweeps)` per probed period of the binary search.
    pub probes: Vec<(u64, usize)>,
    /// The Φ-optimality certificate.
    pub witness: WitnessReport,
    /// Clock period of the mapped network (max depth; equals `phi`).
    pub period: u64,
    /// Per-node timing, mapped gates in id order.
    pub nodes: Vec<NodeTiming>,
    /// One critical path, source to sink, node names.
    pub critical_path: Vec<String>,
    /// `(slack, count)` over `nodes`, ascending slack.
    pub slack_hist: Vec<(u64, u64)>,
    /// Per-gate label attribution, source gates in id order.
    pub labels: Vec<LabelRow>,
    /// Retiming / initial-state summary.
    pub retiming: RetimingSummary,
}

fn int(v: i64) -> JsonValue {
    JsonValue::Int(v)
}

fn uint(v: u64) -> JsonValue {
    JsonValue::UInt(v)
}

fn step_json(step: &WitnessStep) -> JsonValue {
    let mut pairs: Vec<(&str, JsonValue)> = vec![
        ("rule", JsonValue::str(step.rule())),
        ("node", uint(step.node().0 as u64)),
    ];
    match step {
        WitnessStep::Fanin { from, weight, .. } => {
            pairs.push(("from", uint(from.0 as u64)));
            pairs.push(("weight", uint(*weight)));
        }
        WitnessStep::NoCut { height, .. } => {
            pairs.push(("height", int(*height)));
        }
        WitnessStep::WeightBump { height, w_min, .. } => {
            pairs.push(("height", int(*height)));
            pairs.push(("w_min", uint(*w_min)));
        }
    }
    pairs.push(("value", int(step.value())));
    JsonValue::object(pairs)
}

/// Parses one witness step object back (the checker's input path).
fn step_from_json(v: &JsonValue) -> Result<WitnessStep, String> {
    let rule = v
        .get("rule")
        .and_then(JsonValue::as_str)
        .ok_or("step missing `rule`")?;
    let field_u64 = |key: &str| -> Result<u64, String> {
        v.get(key)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("step missing `{key}`"))
    };
    let field_i64 = |key: &str| -> Result<i64, String> {
        match v.get(key) {
            Some(JsonValue::Int(i)) => Ok(*i),
            Some(JsonValue::UInt(u)) if *u <= i64::MAX as u64 => Ok(*u as i64),
            _ => Err(format!("step missing `{key}`")),
        }
    };
    let node = NodeId(field_u64("node")? as u32);
    let value = field_i64("value")?;
    match rule {
        "fanin" => Ok(WitnessStep::Fanin {
            node,
            from: NodeId(field_u64("from")? as u32),
            weight: field_u64("weight")?,
            value,
        }),
        "no_cut" => Ok(WitnessStep::NoCut {
            node,
            height: field_i64("height")?,
            value,
        }),
        "weight_bump" => Ok(WitnessStep::WeightBump {
            node,
            height: field_i64("height")?,
            w_min: field_u64("w_min")?,
            value,
        }),
        other => Err(format!("unknown witness rule `{other}`")),
    }
}

/// A witness parsed back out of a rendered document — what the
/// independent checker actually replays, so that the verification also
/// covers the serialization round trip.
#[derive(Debug, Clone)]
pub struct ParsedWitness {
    /// The refuted period.
    pub phi_tested: u64,
    /// `Some(steps)` for a derivation witness, `None` with the reason in
    /// `reason` otherwise.
    pub steps: Option<Vec<WitnessStep>>,
    /// Unavailability reason (derivations leave it empty).
    pub reason: String,
    /// Critical-cycle node names (possibly empty).
    pub critical_cycle: Vec<String>,
    /// Claimed total delay around the cycle.
    pub cycle_delay: u64,
    /// Claimed total register weight around the cycle.
    pub cycle_weight: u64,
}

/// Extracts the witness section from a rendered `turbomap-report/v1`
/// document.
pub fn parse_witness(doc: &JsonValue) -> Result<ParsedWitness, String> {
    let w = doc.get("witness").ok_or("document missing `witness`")?;
    let phi_tested = w
        .get("phi_tested")
        .and_then(JsonValue::as_u64)
        .ok_or("witness missing `phi_tested`")?;
    let kind = w
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or("witness missing `kind`")?;
    let critical_cycle: Vec<String> = match w.get("critical_cycle").and_then(JsonValue::as_array) {
        Some(items) => items
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "non-string cycle entry".to_string())
            })
            .collect::<Result<_, _>>()?,
        None => Vec::new(),
    };
    let cycle_delay = w
        .get("cycle_delay")
        .and_then(JsonValue::as_u64)
        .unwrap_or(0);
    let cycle_weight = w
        .get("cycle_weight")
        .and_then(JsonValue::as_u64)
        .unwrap_or(0);
    let (steps, reason) = match kind {
        "derivation" => {
            let items = w
                .get("steps")
                .and_then(JsonValue::as_array)
                .ok_or("derivation witness missing `steps`")?;
            let steps = items
                .iter()
                .map(step_from_json)
                .collect::<Result<Vec<_>, _>>()?;
            (Some(steps), String::new())
        }
        "unavailable" => {
            let reason = w
                .get("reason")
                .and_then(JsonValue::as_str)
                .unwrap_or("unspecified")
                .to_string();
            (None, reason)
        }
        other => return Err(format!("unknown witness kind `{other}`")),
    };
    Ok(ParsedWitness {
        phi_tested,
        steps,
        reason,
        critical_cycle,
        cycle_delay,
        cycle_weight,
    })
}

impl Report {
    /// Renders the deterministic `turbomap-report/v1` document.
    pub fn to_json(&self) -> JsonValue {
        let witness = {
            let mut pairs: Vec<(&str, JsonValue)> = vec![
                (
                    "kind",
                    JsonValue::str(match &self.witness.kind {
                        WitnessKind::Derivation => "derivation",
                        WitnessKind::Unavailable(_) => "unavailable",
                    }),
                ),
                (
                    "claim",
                    JsonValue::str(format!(
                        "no simple FRT mapping solution exists at period {}",
                        self.witness.phi_tested
                    )),
                ),
                ("phi_tested", uint(self.witness.phi_tested)),
            ];
            match &self.witness.kind {
                WitnessKind::Derivation => {
                    pairs.push(("step_count", uint(self.witness.steps.len() as u64)));
                    pairs.push((
                        "steps",
                        JsonValue::Array(self.witness.steps.iter().map(step_json).collect()),
                    ));
                    pairs.push((
                        "node_names",
                        JsonValue::Array(
                            self.witness
                                .node_names
                                .iter()
                                .map(|(id, name)| {
                                    JsonValue::Array(vec![
                                        uint(*id as u64),
                                        JsonValue::str(name.clone()),
                                    ])
                                })
                                .collect(),
                        ),
                    ));
                }
                WitnessKind::Unavailable(reason) => {
                    pairs.push(("reason", JsonValue::str(reason.clone())));
                }
            }
            if !self.witness.critical_cycle.is_empty() {
                pairs.push((
                    "critical_cycle",
                    JsonValue::Array(
                        self.witness
                            .critical_cycle
                            .iter()
                            .map(|n| JsonValue::str(n.clone()))
                            .collect(),
                    ),
                ));
                pairs.push(("cycle_delay", uint(self.witness.cycle_delay)));
                pairs.push(("cycle_weight", uint(self.witness.cycle_weight)));
            }
            JsonValue::object(pairs)
        };
        let timing = JsonValue::object(vec![
            ("period", uint(self.period)),
            (
                "critical_path",
                JsonValue::Array(
                    self.critical_path
                        .iter()
                        .map(|n| JsonValue::str(n.clone()))
                        .collect(),
                ),
            ),
            (
                "slack_histogram",
                JsonValue::Array(
                    self.slack_hist
                        .iter()
                        .map(|&(s, c)| JsonValue::Array(vec![uint(s), uint(c)]))
                        .collect(),
                ),
            ),
            (
                "nodes",
                JsonValue::Array(
                    self.nodes
                        .iter()
                        .map(|n| {
                            JsonValue::object(vec![
                                ("id", uint(n.id as u64)),
                                ("name", JsonValue::str(n.name.clone())),
                                ("depth", uint(n.depth)),
                                ("slack", uint(n.slack)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        let labels = JsonValue::object(vec![
            ("phi", uint(self.phi_labels)),
            (
                "nodes",
                JsonValue::Array(
                    self.labels
                        .iter()
                        .map(|l| {
                            let mut pairs: Vec<(&str, JsonValue)> = vec![
                                ("id", uint(l.id as u64)),
                                ("name", JsonValue::str(l.name.clone())),
                                ("ls", int(l.ls)),
                                ("r", uint(l.r)),
                                ("label_slack", int(l.label_slack)),
                            ];
                            if let Some(rb) = l.rb {
                                pairs.push(("rb", int(rb)));
                            }
                            if let Some(rbs) = l.rb_slack {
                                pairs.push(("rb_slack", int(rbs)));
                            }
                            if let Some(lag) = l.lag {
                                pairs.push(("lag", int(lag)));
                            }
                            JsonValue::object(pairs)
                        })
                        .collect(),
                ),
            ),
        ]);
        let retiming = JsonValue::object(vec![
            ("lag_min", int(self.retiming.lag_min)),
            ("lag_max", int(self.retiming.lag_max)),
            ("lag_nonzero", uint(self.retiming.lag_nonzero as u64)),
            ("planned_roots", uint(self.retiming.planned_roots as u64)),
            ("forward_moves", uint(self.retiming.forward_moves)),
            ("backward_moves", uint(self.retiming.backward_moves)),
            (
                "initial_state_lost",
                JsonValue::Bool(self.retiming.initial_state_lost),
            ),
            (
                "sharing_conflict",
                JsonValue::Bool(self.retiming.sharing_conflict),
            ),
        ]);
        JsonValue::object(vec![
            ("schema", JsonValue::str(SCHEMA)),
            ("name", JsonValue::str(self.name.clone())),
            ("k", uint(self.k as u64)),
            ("phi", uint(self.phi)),
            ("luts", uint(self.luts as u64)),
            ("ffs", uint(self.ffs as u64)),
            ("star", JsonValue::Bool(self.star)),
            (
                "probes",
                JsonValue::Array(
                    self.probes
                        .iter()
                        .map(|&(p, s)| JsonValue::Array(vec![uint(p), uint(s as u64)]))
                        .collect(),
                ),
            ),
            ("witness", witness),
            ("timing", timing),
            ("labels", labels),
            ("retiming", retiming),
        ])
    }

    /// Renders the human-readable summary table.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== {} · {} ==", SCHEMA, self.name);
        let _ = writeln!(
            out,
            "K = {}   Φ = {}   LUTs = {}   FFs = {}   star = {}",
            self.k,
            self.phi,
            self.luts,
            self.ffs,
            if self.star { "yes" } else { "no" }
        );
        let probes: Vec<String> = self
            .probes
            .iter()
            .map(|(p, s)| format!("Φ={p}:{s}"))
            .collect();
        let _ = writeln!(out, "probes (Φ:sweeps): {}", probes.join("  "));
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "-- Φ-optimality (period {} refuted) --",
            self.witness.phi_tested
        );
        match &self.witness.kind {
            WitnessKind::Derivation => {
                let terminal = self.witness.steps.last();
                let name = terminal
                    .map(|s| self.node_name(s.node().0))
                    .unwrap_or_default();
                let _ = writeln!(
                    out,
                    "witness: derivation, {} steps; terminal {} reaches l^s = {} > {}",
                    self.witness.steps.len(),
                    name,
                    terminal.map(WitnessStep::value).unwrap_or_default(),
                    self.witness.phi_tested,
                );
            }
            WitnessKind::Unavailable(reason) => {
                let _ = writeln!(out, "witness: unavailable ({reason})");
            }
        }
        if !self.witness.critical_cycle.is_empty() {
            let _ = writeln!(
                out,
                "critical cycle ({} nodes, d = {} > {}·w = {}·{}): {}",
                self.witness.critical_cycle.len(),
                self.witness.cycle_delay,
                self.witness.phi_tested,
                self.witness.phi_tested,
                self.witness.cycle_weight,
                self.witness.critical_cycle.join(" -> "),
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "-- timing attribution (mapped network, period {}) --",
            self.period
        );
        let _ = writeln!(out, "critical path: {}", self.critical_path.join(" -> "));
        let hist: Vec<String> = self
            .slack_hist
            .iter()
            .map(|(s, c)| format!("{s}:{c}"))
            .collect();
        let _ = writeln!(out, "slack histogram (slack:count): {}", hist.join("  "));
        let _ = writeln!(out, "{:>6}  {:>6}  node", "slack", "depth");
        for n in self.nodes.iter().take(TABLE_ROWS) {
            let _ = writeln!(out, "{:>6}  {:>6}  {}", n.slack, n.depth, n.name);
        }
        if self.nodes.len() > TABLE_ROWS {
            let _ = writeln!(out, "  (... {} more)", self.nodes.len() - TABLE_ROWS);
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "-- label attribution (source network, Φ = {}) --",
            self.phi_labels
        );
        let _ = writeln!(
            out,
            "{:>5}  {:>3}  {:>6}  {:>5}  {:>9}  {:>4}  node",
            "l^s", "r", "slack", "rb", "rb_slack", "lag"
        );
        let opt = |v: Option<i64>| v.map_or("-".to_string(), |x| x.to_string());
        for l in self.labels.iter().take(TABLE_ROWS) {
            let _ = writeln!(
                out,
                "{:>5}  {:>3}  {:>6}  {:>5}  {:>9}  {:>4}  {}",
                l.ls,
                l.r,
                l.label_slack,
                opt(l.rb),
                opt(l.rb_slack),
                opt(l.lag),
                l.name
            );
        }
        if self.labels.len() > TABLE_ROWS {
            let _ = writeln!(out, "  (... {} more)", self.labels.len() - TABLE_ROWS);
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "-- retiming & initial state --");
        let _ = writeln!(
            out,
            "planned lags: min {}  max {}  nonzero {}/{} roots",
            self.retiming.lag_min,
            self.retiming.lag_max,
            self.retiming.lag_nonzero,
            self.retiming.planned_roots
        );
        let _ = writeln!(
            out,
            "moves: {} forward, {} backward; initial state {}",
            self.retiming.forward_moves,
            self.retiming.backward_moves,
            if self.retiming.initial_state_lost {
                "LOST (⋆)"
            } else if self.retiming.sharing_conflict {
                "sharing conflict (⋆)"
            } else {
                "computed by simulation"
            }
        );
        out
    }

    fn node_name(&self, id: u32) -> String {
        self.witness
            .node_names
            .iter()
            .find(|(i, _)| *i == id)
            .map(|(_, n)| n.clone())
            .unwrap_or_else(|| format!("#{id}"))
    }
}
