//! Ablation study over the design choices called out in DESIGN.md:
//!
//! 1. **Cut extraction side** — near-sink min-cuts (small cones, less
//!    duplication) vs the slack-relaxed planner (`turbomap::plan_mapping`).
//! 2. **Weight horizon of the general TurboMap baseline** — how the
//!    per-LUT register-crossing window changes Φ, area and ⋆ rate.
//! 3. **Simple-only TurboMap-frt** (`weight_horizon = 0`) — what the
//!    paper's non-simple solutions buy.
//!
//! Run with: `cargo run --release -p bench --example ablations`

use turbomap::{turbomap_frt, turbomap_general, Options};

fn main() {
    let names = ["dk16", "ex1", "kirkman", "sand", "keyb", "scf"];
    println!("== ablation 1+3: TurboMap-frt horizon (0 = simple solutions only) ==");
    println!(
        "{:<10} {:>10} {:>10} {:>14}",
        "circuit", "Φ full", "Φ simple", "LUT full/simple"
    );
    for name in names {
        let p = workloads::presets()
            .into_iter()
            .find(|p| p.name == name)
            .expect("preset");
        let c = workloads::build_preset(&p);
        let full = turbomap_frt(&c, Options::with_k(5)).expect("maps");
        let simple = turbomap_frt(
            &c,
            Options {
                weight_horizon: 0,
                ..Options::with_k(5)
            },
        )
        .expect("maps");
        println!(
            "{:<10} {:>10} {:>10} {:>7}/{:<7}",
            name, full.period, simple.period, full.luts, simple.luts
        );
        assert!(full.period <= simple.period);
    }

    println!();
    println!("== ablation 2: TurboMap general horizon ==");
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "circuit", "h=1 Φ(⋆)", "h=2 Φ(⋆)", "h=4 Φ(⋆)"
    );
    for name in names {
        let p = workloads::presets()
            .into_iter()
            .find(|p| p.name == name)
            .expect("preset");
        let c = workloads::build_preset(&p);
        let mut cells = Vec::new();
        for h in [1u64, 2, 4] {
            let r = turbomap_general(
                &c,
                Options {
                    general_horizon: h,
                    ..Options::with_k(5)
                },
            )
            .expect("maps");
            cells.push(format!("{}{}", r.period, if r.star() { "*" } else { " " }));
        }
        println!(
            "{:<10} {:>12} {:>12} {:>12}",
            name, cells[0], cells[1], cells[2]
        );
    }
    println!();
    println!("(larger horizons explore deeper cross-register LUTs: Φ can only");
    println!(" drop, while initial-state failures (*) become more likely —");
    println!(" the paper's central trade-off.)");
}
