//! Benchmark harness support: runs the paper's three algorithms on a
//! circuit and formats Table-1-style reports.

use netlist::Circuit;
use std::time::Instant;

/// One algorithm's measured row fragment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measured {
    /// Clock period Φ.
    pub phi: u64,
    /// LUT count.
    pub luts: usize,
    /// FF count (register sharing).
    pub ffs: usize,
    /// Wall-clock seconds.
    pub cpu: f64,
    /// `⋆`: no usable equivalent initial state.
    pub star: bool,
    /// Sequential equivalence verified (random vectors).
    pub verified: bool,
}

/// All three algorithms on one circuit.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Gates of the original circuit.
    pub n: usize,
    /// Registers of the original circuit.
    pub f: usize,
    /// FlowMap-frt result.
    pub flowmap_frt: Measured,
    /// TurboMap (general retiming) result.
    pub turbomap: Measured,
    /// TurboMap-frt result.
    pub turbomap_frt: Measured,
    /// Label iterations per probed Φ for TurboMap-frt (the §3.2 claim).
    pub frt_iterations: Vec<(u64, usize)>,
}

impl Row {
    /// The best Φ among baselines whose initial state was usable
    /// (the paper's `Best` column).
    pub fn best_valid_phi(&self) -> u64 {
        let mut best = self.flowmap_frt.phi;
        if !self.turbomap.star {
            best = best.min(self.turbomap.phi);
        }
        best
    }
}

/// Number of random vectors used for verification (the paper used 3008
/// for its largest circuits).
pub const VERIFY_VECTORS: usize = 3008;

/// Runs the three algorithms on one circuit.
///
/// `verify` enables the random-vector equivalence check (skippable for
/// timing-only runs).
///
/// # Panics
///
/// Panics when an algorithm fails on a valid benchmark (a bug, not a
/// measurement).
pub fn run_row(name: &str, c: &Circuit, k: usize, verify: bool) -> Row {
    let opts = turbomap::Options::with_k(k);

    let t0 = Instant::now();
    let prep = turbomap::prepare(c, k).expect("benchmarks are valid");
    let fm = flowmap::flowmap_frt(&prep, k).expect("flowmap-frt succeeds");
    let fm_cpu = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let tf = turbomap::turbomap_frt(c, opts).expect("turbomap-frt succeeds");
    let tf_cpu = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let tm = turbomap::turbomap_general(c, opts).expect("turbomap succeeds");
    let tm_cpu = t0.elapsed().as_secs_f64();

    let check = |mapped: &Circuit, seed: u64| -> bool {
        verify
            && netlist::random_equiv(c, mapped, VERIFY_VECTORS, seed)
                .map(|r| r.is_equivalent())
                .unwrap_or(false)
    };
    Row {
        name: name.to_string(),
        n: c.num_gates(),
        f: c.ff_count_shared(),
        flowmap_frt: Measured {
            phi: fm.period,
            luts: fm.luts,
            ffs: fm.ffs,
            cpu: fm_cpu,
            star: false,
            verified: check(&fm.circuit, 1),
        },
        turbomap: Measured {
            phi: tm.period,
            luts: tm.luts,
            ffs: tm.ffs,
            cpu: tm_cpu,
            star: tm.star(),
            verified: check(&tm.circuit, 2),
        },
        turbomap_frt: Measured {
            phi: tf.period,
            luts: tf.luts,
            ffs: tf.ffs,
            cpu: tf_cpu,
            star: tf.star(),
            verified: check(&tf.circuit, 3),
        },
        frt_iterations: tf.iterations,
    }
}

/// Geometric mean helper.
pub fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v.max(1e-9).ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_row_on_tiny_preset() {
        let presets = workloads::presets();
        let p = &presets[1]; // bbtas
        let c = workloads::build_preset(p);
        let row = run_row(p.name, &c, 5, true);
        assert!(row.turbomap_frt.phi <= row.flowmap_frt.phi);
        assert!(row.turbomap.phi <= row.turbomap_frt.phi);
        assert!(row.flowmap_frt.verified);
        assert!(row.turbomap_frt.verified);
        assert!(!row.turbomap_frt.star);
        assert!(row.best_valid_phi() >= row.turbomap.phi || row.turbomap.star);
    }

    #[test]
    fn geomean_matches_hand_value() {
        let g = geomean([2.0f64, 8.0].into_iter());
        assert!((g - 4.0).abs() < 1e-9);
    }
}
