//! Benchmark harness support: runs the paper's three algorithms on a
//! circuit and formats Table-1-style reports.
//!
//! Timing comes from one source: the `engine` phase timers that the
//! mapping crates themselves maintain (label / search / generate /
//! verify). The text report and the JSON artifact read the same
//! [`engine::Telemetry`] snapshots, so they can never disagree.

pub mod artifact;
pub mod batch;
pub mod diff;
pub mod large;

use engine::telemetry::{self, Phase, Telemetry};
use netlist::Circuit;

/// One algorithm's measured row fragment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measured {
    /// Clock period Φ.
    pub phi: u64,
    /// LUT count.
    pub luts: usize,
    /// FF count (register sharing).
    pub ffs: usize,
    /// Mapping seconds: the label + search + generate phase timers
    /// (verification is timed separately under [`Phase::Verify`]).
    pub cpu: f64,
    /// `⋆`: no usable equivalent initial state.
    pub star: bool,
    /// Sequential equivalence verified (random vectors).
    pub verified: bool,
    /// Full telemetry delta attributed to this algorithm (phase timers
    /// plus algorithmic counters).
    pub telemetry: Telemetry,
}

/// All three algorithms on one circuit.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Gates of the original circuit.
    pub n: usize,
    /// Registers of the original circuit.
    pub f: usize,
    /// FlowMap-frt result.
    pub flowmap_frt: Measured,
    /// TurboMap (general retiming) result.
    pub turbomap: Measured,
    /// TurboMap-frt result.
    pub turbomap_frt: Measured,
    /// Label iterations per probed Φ for TurboMap-frt (the §3.2 claim).
    pub frt_iterations: Vec<(u64, usize)>,
}

impl Row {
    /// The best Φ among baselines whose initial state was usable
    /// (the paper's `Best` column).
    pub fn best_valid_phi(&self) -> u64 {
        let mut best = self.flowmap_frt.phi;
        if !self.turbomap.star {
            best = best.min(self.turbomap.phi);
        }
        best
    }
}

/// Number of random vectors used for verification (the paper used 3008
/// for its largest circuits).
pub const VERIFY_VECTORS: usize = 3008;

/// Mapping seconds of a telemetry delta: every phase except verify.
fn mapping_secs(t: &Telemetry) -> f64 {
    t.total_phase_secs() - t.phase_secs(Phase::Verify)
}

/// Runs the three algorithms on one circuit, returning an error string
/// instead of panicking (the batch runner's preferred shape: a cancelled
/// or failed algorithm becomes a reportable job outcome).
///
/// `verify` enables the random-vector equivalence check (skippable for
/// timing-only runs).
///
/// # Errors
///
/// Returns a message naming the failing algorithm; cancellation
/// (`TurboMapError::Cancelled`) propagates as an error mentioning it.
pub fn try_run_row(name: &str, c: &Circuit, k: usize, verify: bool) -> Result<Row, String> {
    try_run_row_opts(name, c, verify, turbomap::Options::with_k(k))
}

/// [`try_run_row`] with full control over the TurboMap options — the
/// bench binaries use this to thread `--sweep-workers` /
/// `--no-warm-start` through to the Φ probes. `opts.k` applies to all
/// three algorithms.
///
/// # Errors
///
/// Same contract as [`try_run_row`].
pub fn try_run_row_opts(
    name: &str,
    c: &Circuit,
    verify: bool,
    opts: turbomap::Options,
) -> Result<Row, String> {
    try_run_row_partitioned(name, c, verify, opts, None)
}

/// [`try_run_row_opts`] with an optional partition-and-conquer
/// TurboMap-frt leg: `Some(0)` resolves the block count automatically
/// (one block per ~100k gates), `Some(n)` fixes it. FlowMap-frt and
/// TurboMap stay monolithic — they are the paper's baselines — so a
/// partitioned artifact diffs cleanly against a monolithic one under
/// `benchdiff --phi-gap`.
///
/// The partitioned leg verifies in [`netlist::EquivMode::Compatibility`]
/// (both the stitched result and the source can carry pessimistic `X`
/// bits in different registers) and reports no FRTcheck iteration trail
/// (each block keeps its own).
///
/// # Errors
///
/// Same contract as [`try_run_row`].
pub fn try_run_row_partitioned(
    name: &str,
    c: &Circuit,
    verify: bool,
    opts: turbomap::Options,
    partitions: Option<usize>,
) -> Result<Row, String> {
    let k = opts.k;
    let check = |mapped: &Circuit, seed: u64, mode: netlist::EquivMode| -> bool {
        let _t = telemetry::time_phase(Phase::Verify);
        let _s = engine::trace::span1("verify", "vectors", VERIFY_VECTORS as u64);
        let _mem = engine::mem::scope(engine::mem::MemPhase::Verify);
        verify
            && netlist::random_equiv_mode(c, mapped, VERIFY_VECTORS, seed, mode)
                .map(|r| r.is_equivalent())
                .unwrap_or(false)
    };

    let t0 = telemetry::snapshot();
    let prep = turbomap::prepare(c, k).map_err(|e| format!("prepare: {e}"))?;
    let fm = flowmap::flowmap_frt(&prep, k).map_err(|e| format!("flowmap-frt: {e}"))?;
    let fm_verified = check(&fm.circuit, 1, netlist::EquivMode::Conformance);
    let t1 = telemetry::snapshot();

    let tf = match partitions {
        None => {
            let tf = turbomap::turbomap_frt(c, opts).map_err(|e| format!("turbomap-frt: {e}"))?;
            let verified = check(&tf.circuit, 3, netlist::EquivMode::Conformance);
            (
                tf.period,
                tf.luts,
                tf.ffs,
                tf.star(),
                tf.iterations,
                verified,
            )
        }
        Some(p) => {
            let blocks = if p == 0 {
                partition::auto_blocks(c.num_gates())
            } else {
                p
            };
            let mut popts = partition::PartitionOptions::new(k, blocks);
            popts.sweep_workers = opts.sweep_workers;
            let part =
                partition::partition_map(c, &popts).map_err(|e| format!("partition: {e}"))?;
            let verified = check(&part.circuit, 3, netlist::EquivMode::Compatibility);
            // Per-block initial states are recomputed across seams, so
            // the stitched mapping never loses them (no `⋆`); the
            // FRTcheck iteration trail is per-block and not reported.
            let r = &part.report;
            (r.phi, r.luts, r.ffs, false, Vec::new(), verified)
        }
    };
    let (tf_phi, tf_luts, tf_ffs, tf_star, tf_iterations, tf_verified) = tf;
    let t2 = telemetry::snapshot();

    let tm = turbomap::turbomap_general(c, opts).map_err(|e| format!("turbomap: {e}"))?;
    let tm_verified = check(&tm.circuit, 2, netlist::EquivMode::Conformance);
    let t3 = telemetry::snapshot();

    let fm_t = t1.since(&t0);
    let tf_t = t2.since(&t1);
    let tm_t = t3.since(&t2);
    Ok(Row {
        name: name.to_string(),
        n: c.num_gates(),
        f: c.ff_count_shared(),
        flowmap_frt: Measured {
            phi: fm.period,
            luts: fm.luts,
            ffs: fm.ffs,
            cpu: mapping_secs(&fm_t),
            star: false,
            verified: fm_verified,
            telemetry: fm_t,
        },
        turbomap: Measured {
            phi: tm.period,
            luts: tm.luts,
            ffs: tm.ffs,
            cpu: mapping_secs(&tm_t),
            star: tm.star(),
            verified: tm_verified,
            telemetry: tm_t,
        },
        turbomap_frt: Measured {
            phi: tf_phi,
            luts: tf_luts,
            ffs: tf_ffs,
            cpu: mapping_secs(&tf_t),
            star: tf_star,
            verified: tf_verified,
            telemetry: tf_t,
        },
        frt_iterations: tf_iterations,
    })
}

/// Runs the three algorithms on one circuit.
///
/// # Panics
///
/// Panics when an algorithm fails on a valid benchmark (a bug, not a
/// measurement). Use [`try_run_row`] for the non-panicking form.
pub fn run_row(name: &str, c: &Circuit, k: usize, verify: bool) -> Row {
    try_run_row(name, c, k, verify).expect("benchmarks are valid")
}

/// Geometric mean helper.
pub fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v.max(1e-9).ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::telemetry::Counter;

    #[test]
    fn run_row_on_tiny_preset() {
        let presets = workloads::presets();
        let p = &presets[1]; // bbtas
        let c = workloads::build_preset(p);
        let row = run_row(p.name, &c, 5, true);
        assert!(row.turbomap_frt.phi <= row.flowmap_frt.phi);
        assert!(row.turbomap.phi <= row.turbomap_frt.phi);
        assert!(row.flowmap_frt.verified);
        assert!(row.turbomap_frt.verified);
        assert!(!row.turbomap_frt.star);
        assert!(row.best_valid_phi() >= row.turbomap.phi || row.turbomap.star);
    }

    #[test]
    fn telemetry_attributed_per_algorithm() {
        let presets = workloads::presets();
        let p = &presets[1]; // bbtas
        let c = workloads::build_preset(p);
        let row = run_row(p.name, &c, 5, true);
        // TurboMap-frt runs FRTcheck sweeps and max-flow augmentations.
        assert!(row.turbomap_frt.telemetry.counter(Counter::FrtSweeps) > 0);
        assert!(
            row.turbomap_frt
                .telemetry
                .counter(Counter::FlowAugmentations)
                > 0
        );
        // Verification was timed but excluded from the mapping cpu.
        assert!(row.turbomap_frt.telemetry.phase_secs(Phase::Verify) > 0.0);
        assert!(row.turbomap_frt.cpu <= row.turbomap_frt.telemetry.total_phase_secs());
        // FlowMap-frt does no FRTcheck sweeps.
        assert_eq!(row.flowmap_frt.telemetry.counter(Counter::FrtSweeps), 0);
    }

    #[test]
    fn partitioned_row_keeps_baselines_and_bounds_phi() {
        let presets = workloads::presets();
        let p = &presets[1]; // bbtas
        let c = workloads::build_preset(p);
        let opts = turbomap::Options::with_k(5);
        let mono = try_run_row_opts(p.name, &c, true, opts).unwrap();
        let part = try_run_row_partitioned(p.name, &c, true, opts, Some(2)).unwrap();
        // Baselines are monolithic in both rows.
        assert_eq!(part.flowmap_frt.phi, mono.flowmap_frt.phi);
        assert_eq!(part.turbomap.phi, mono.turbomap.phi);
        // Frozen seams can only lose retiming freedom.
        assert!(part.turbomap_frt.phi >= mono.turbomap_frt.phi);
        assert!(part.turbomap_frt.verified);
        assert!(!part.turbomap_frt.star);
        // The FRTcheck trail is per-block and not reported.
        assert!(part.frt_iterations.is_empty());
    }

    #[test]
    fn cancelled_row_is_an_error_not_a_panic() {
        let token = engine::CancelToken::new();
        token.cancel();
        let _g = engine::cancel::install(token);
        let presets = workloads::presets();
        let c = workloads::build_preset(&presets[1]);
        let err = try_run_row("bbtas", &c, 5, false).unwrap_err();
        assert!(err.contains("cancelled"), "err = {err}");
    }

    #[test]
    fn geomean_matches_hand_value() {
        let g = geomean([2.0f64, 8.0].into_iter());
        assert!((g - 4.0).abs() < 1e-9);
    }
}
