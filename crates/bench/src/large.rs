//! The large-workload ingestion suite: generate each `workloads::large`
//! preset to disk, time the streaming front-end parsing and flattening
//! it, then time a vectorized **verify phase** over the flattened
//! circuit.
//!
//! Unlike the Table-1 suite this measures the *front-end*, not the
//! mappers: the interesting numbers are file size, model/gate/FF
//! totals (deterministic for a preset — any drift is a generator or
//! linker regression) and the parse/flatten/verify wall times
//! (reported, and zeroed in canonical artifacts like every other
//! timing field).
//!
//! The verify phase drives [`VERIFY_LANES`] independent random input
//! sequences through the circuit on **both** simulation engines — the
//! 64-wide two-bitplane [`netlist::VecSimulator`] in one pass, and the
//! scalar [`netlist::Simulator`] one sequence at a time — and requires
//! their outputs to agree bit-for-bit. That makes every suite run a
//! full-scale differential test of the vector engine, and the two wall
//! times quantify the vectorization speedup on exactly the workload
//! the equivalence checkers see (`verify_scalar_secs / verify_secs`,
//! gated by `benchdiff --verify-speedup`).

use netlist::{Bit, Planes, Simulator, VecSimulator, LANES};
use std::time::Instant;

/// Independent sequences in the verify phase: one full `Planes` word.
pub const VERIFY_LANES: usize = LANES;

/// Scalar-engine work budget (gate evaluations) that picks the verify
/// sequence depth per preset, so the phase stays a few seconds even on
/// million-gate circuits.
const VERIFY_EVAL_BUDGET: usize = 150_000_000;

/// Sequence depth of the verify phase: budget-bounded, clamped to
/// `[2, 16]` cycles. Deterministic per gate count.
pub fn verify_cycles_for(gates: usize) -> usize {
    (VERIFY_EVAL_BUDGET / VERIFY_LANES.saturating_mul(gates.max(1))).clamp(2, 16)
}

/// One preset's ingestion measurement.
#[derive(Debug, Clone)]
pub struct IngestRow {
    /// Preset name (`hier100k`, …).
    pub name: String,
    /// Size of the generated BLIF file in bytes.
    pub file_bytes: u64,
    /// Models in the parsed file (top + tile kinds + blackbox).
    pub models: usize,
    /// Flattened gate count.
    pub gates: usize,
    /// Flattened FF count (total, per-edge).
    pub ffs: usize,
    /// Primary inputs of the flattened circuit.
    pub pis: usize,
    /// Primary outputs of the flattened circuit.
    pub pos: usize,
    /// Seconds to stream-parse the file into the AST.
    pub parse_secs: f64,
    /// Seconds for parse + hierarchy flattening.
    pub total_secs: f64,
    /// Independent input sequences in the verify phase ([`VERIFY_LANES`]).
    pub verify_lanes: usize,
    /// Cycles per verify sequence (budget-bounded, see [`verify_cycles_for`]).
    pub verify_cycles: usize,
    /// Seconds the vectorized engine took to simulate all verify
    /// sequences (one 64-lane pass).
    pub verify_secs: f64,
    /// Seconds the scalar engine took on the same sequences, one at a
    /// time — the pre-vectorization baseline; `verify_scalar_secs /
    /// verify_secs` is the measured vectorization speedup.
    pub verify_scalar_secs: f64,
    /// Process peak RSS (`VmHWM`) in KiB after the ingest, 0 when the
    /// probe is unavailable. Zeroed in canonical artifacts like every
    /// other environment-dependent measurement.
    pub peak_rss_kib: u64,
    /// Partition-and-conquer mapping measurement (`--partitions` runs
    /// only; `None` keeps the row ingestion-only).
    pub partition: Option<PartitionMeasurement>,
}

/// The partitioned-mapping leg of a large row: structural fields
/// (blocks, cut FFs, Φ, LUTs) are deterministic per preset + block
/// count and exact-gated by `benchdiff`; the wall times and the
/// derived speedup are environment measurements, zeroed in canonical
/// artifacts.
#[derive(Debug, Clone)]
pub struct PartitionMeasurement {
    /// Non-empty blocks actually mapped.
    pub blocks: usize,
    /// Registers frozen on seams between blocks.
    pub cut_ffs: u64,
    /// Φ of the stitched circuit.
    pub phi: u64,
    /// LUTs in the stitched circuit.
    pub luts: usize,
    /// Wall seconds of the whole partitioned mapping (plan + blocks +
    /// stitch) at the requested worker count.
    pub map_secs: f64,
    /// Sum of the per-block mapping walls — the serial cost of the
    /// block legs. `block_secs / map_secs` is the measured multi-block
    /// parallel speedup (> 1 when workers overlap blocks).
    pub block_secs: f64,
}

impl PartitionMeasurement {
    /// Measured multi-block parallel speedup: serial block cost over
    /// actual wall (0 when the run was too fast to time).
    pub fn speedup(&self) -> f64 {
        if self.map_secs > 0.0 {
            self.block_secs / self.map_secs
        } else {
            0.0
        }
    }
}

/// Generates `spec` into `dir` and ingests it through the streaming
/// front-end. The generated file is left in place (callers pass a temp
/// dir; CI reuses the file for `blifcheck`).
///
/// # Errors
///
/// Returns a message on I/O, parse or link failures, and when the
/// flattened totals disagree with the generator's closed-form counts
/// (which would mean the generator and linker drifted apart).
pub fn run_ingest_row(
    spec: &workloads::LargeSpec,
    dir: &std::path::Path,
) -> Result<IngestRow, String> {
    run_ingest_row_partitioned(spec, dir, None, 0, 5)
}

/// [`run_ingest_row`] plus an optional partition-and-conquer mapping
/// leg: `partitions` follows the usual convention (`None` off,
/// `Some(0)` auto, `Some(n)` fixed blocks), `jobs` is the block-level
/// worker count (0 → one worker; the mapped result is byte-identical
/// for every value) and `k` the LUT input bound.
///
/// # Errors
///
/// Same contract as [`run_ingest_row`]; mapping failures name the
/// preset and the partition stage.
pub fn run_ingest_row_partitioned(
    spec: &workloads::LargeSpec,
    dir: &std::path::Path,
    partitions: Option<usize>,
    jobs: usize,
    k: usize,
) -> Result<IngestRow, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("creating `{}`: {e}", dir.display()))?;
    let path = dir.join(format!("{}.blif", spec.name));
    let f =
        std::fs::File::create(&path).map_err(|e| format!("creating `{}`: {e}", path.display()))?;
    let mut w = std::io::BufWriter::new(f);
    workloads::write_hier(spec, &mut w)
        .map_err(|e| format!("writing `{}`: {e}", path.display()))?;
    std::io::Write::flush(&mut w).map_err(|e| format!("flushing `{}`: {e}", path.display()))?;
    drop(w);
    let file_bytes = std::fs::metadata(&path)
        .map_err(|e| format!("stat `{}`: {e}", path.display()))?
        .len();

    let start = Instant::now();
    let file = blifio::parse_path(&path).map_err(|e| format!("parsing {}: {e}", spec.name))?;
    let parse_secs = start.elapsed().as_secs_f64();
    let circuit = blifio::flatten(&file, &blifio::LinkOptions::default())
        .map_err(|e| format!("flattening {}: {e}", spec.name))?;
    let total_secs = start.elapsed().as_secs_f64();

    if circuit.num_gates() != spec.flat_gates() || circuit.ff_count_total() != spec.flat_ffs() {
        return Err(format!(
            "{}: flattened totals drifted from the generator: \
             {} gates / {} FFs, expected {} / {}",
            spec.name,
            circuit.num_gates(),
            circuit.ff_count_total(),
            spec.flat_gates(),
            spec.flat_ffs()
        ));
    }

    let verify = run_verify_phase(&circuit, spec.seed)
        .map_err(|e| format!("{}: verify phase: {e}", spec.name))?;

    let partition = match partitions {
        None => None,
        Some(p) => {
            let blocks = if p == 0 {
                partition::auto_blocks(circuit.num_gates())
            } else {
                p
            };
            let mut popts = partition::PartitionOptions::new(k, blocks);
            popts.jobs = jobs;
            let start = Instant::now();
            let mapped = partition::partition_map(&circuit, &popts)
                .map_err(|e| format!("{}: partition: {e}", spec.name))?;
            let map_secs = start.elapsed().as_secs_f64();
            let r = &mapped.report;
            Some(PartitionMeasurement {
                blocks: r.blocks,
                cut_ffs: r.cut_ffs,
                phi: r.phi,
                luts: r.luts,
                map_secs,
                block_secs: r.block_outcomes.iter().map(|b| b.wall.as_secs_f64()).sum(),
            })
        }
    };

    Ok(IngestRow {
        name: spec.name.clone(),
        file_bytes,
        models: file.models.len(),
        gates: circuit.num_gates(),
        ffs: circuit.ff_count_total(),
        pis: circuit.inputs().len(),
        pos: circuit.outputs().len(),
        parse_secs,
        total_secs,
        verify_lanes: VERIFY_LANES,
        verify_cycles: verify.cycles,
        verify_secs: verify.vector_secs,
        verify_scalar_secs: verify.scalar_secs,
        peak_rss_kib: engine::mem::peak_rss_kib().unwrap_or(0),
        partition,
    })
}

struct VerifyMeasurement {
    cycles: usize,
    vector_secs: f64,
    scalar_secs: f64,
}

/// Simulates [`VERIFY_LANES`] independent random sequences on both
/// engines and requires bit-for-bit agreement on every PO, lane and
/// cycle. Returns the two wall times.
fn run_verify_phase(circuit: &netlist::Circuit, seed: u64) -> Result<VerifyMeasurement, String> {
    let m = circuit.inputs().len();
    let cycles = verify_cycles_for(circuit.num_gates());
    // Stimulus: [cycle][lane * m + pi], defined bits with a 1-in-8
    // sprinkle of X so the third value exercises both engines.
    let mut rng = engine::Rng64::new(seed ^ 0x5EC5_1A7E);
    let stimulus: Vec<Vec<Bit>> = (0..cycles)
        .map(|_| {
            (0..VERIFY_LANES * m)
                .map(|_| {
                    let r = rng.next_u64();
                    if r & 7 == 7 {
                        Bit::X
                    } else {
                        Bit::from_bool(r & 1 == 1)
                    }
                })
                .collect()
        })
        .collect();

    // Vector pass: all lanes at once.
    let start = Instant::now();
    let mut vsim = VecSimulator::new(circuit).map_err(|e| e.to_string())?;
    let mut vector_out: Vec<Vec<Planes>> = Vec::with_capacity(cycles);
    let mut inputs = vec![Planes::splat(Bit::X); m];
    for bits in &stimulus {
        for (i, planes) in inputs.iter_mut().enumerate() {
            let (mut p0, mut p1) = (0u64, 0u64);
            for l in 0..VERIFY_LANES {
                match bits[l * m + i] {
                    Bit::Zero => p0 |= 1 << l,
                    Bit::One => p1 |= 1 << l,
                    Bit::X => {
                        p0 |= 1 << l;
                        p1 |= 1 << l;
                    }
                }
            }
            *planes = Planes { p0, p1 };
        }
        vector_out.push(vsim.step(&inputs).map_err(|e| e.to_string())?);
    }
    let vector_secs = start.elapsed().as_secs_f64();

    // Scalar pass: the same sequences one lane at a time — the
    // pre-vectorization equivalence-check protocol.
    let start = Instant::now();
    for l in 0..VERIFY_LANES {
        let mut sim = Simulator::new(circuit).map_err(|e| e.to_string())?;
        for (cycle, bits) in stimulus.iter().enumerate() {
            let lane_in = &bits[l * m..(l + 1) * m];
            let out = sim.step(lane_in).map_err(|e| e.to_string())?;
            for (po, &s) in out.iter().enumerate() {
                let v = vector_out[cycle][po].get(l);
                if v != s {
                    return Err(format!(
                        "engines disagree: PO {po}, lane {l}, cycle {cycle}: \
                         scalar {s:?}, vector {v:?}"
                    ));
                }
            }
        }
    }
    let scalar_secs = start.elapsed().as_secs_f64();

    Ok(VerifyMeasurement {
        cycles,
        vector_secs,
        scalar_secs,
    })
}

/// Runs the whole large suite (presets with at most `max_gates` flat
/// gates when given), in preset order.
///
/// # Errors
///
/// Returns the first failing preset's message.
pub fn run_large_suite(
    max_gates: Option<usize>,
    dir: &std::path::Path,
) -> Result<Vec<IngestRow>, String> {
    run_large_suite_partitioned(max_gates, dir, None, 0, 5)
}

/// [`run_large_suite`] with the partitioned-mapping leg of
/// [`run_ingest_row_partitioned`] on every row.
///
/// # Errors
///
/// Returns the first failing preset's message.
pub fn run_large_suite_partitioned(
    max_gates: Option<usize>,
    dir: &std::path::Path,
    partitions: Option<usize>,
    jobs: usize,
    k: usize,
) -> Result<Vec<IngestRow>, String> {
    workloads::large_presets()
        .iter()
        .filter(|s| max_gates.is_none_or(|cap| s.flat_gates() <= cap))
        .map(|s| run_ingest_row_partitioned(s, dir, partitions, jobs, k))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingest_row_on_small_spec() {
        let spec = workloads::LargeSpec {
            name: "bench_small".into(),
            width: 4,
            kinds: 2,
            tiles: 3,
            tile_gates: 16,
            seed: 7,
        };
        let dir = std::env::temp_dir().join("tmfrt_bench_large");
        let row = run_ingest_row(&spec, &dir).unwrap();
        assert_eq!(row.gates, spec.flat_gates());
        assert_eq!(row.ffs, spec.flat_ffs());
        assert_eq!(row.models, 1 + spec.kinds + 1);
        assert_eq!(row.pis, spec.width);
        assert_eq!(row.pos, spec.width);
        assert!(row.file_bytes > 0);
        assert!(row.total_secs >= row.parse_secs);
        // The verify phase ran on both engines and agreed.
        assert_eq!(row.verify_lanes, VERIFY_LANES);
        assert_eq!(row.verify_cycles, verify_cycles_for(row.gates));
        assert!(row.verify_secs > 0.0);
        assert!(row.verify_scalar_secs > 0.0);
    }

    #[test]
    fn partitioned_ingest_row_on_small_spec() {
        let spec = workloads::LargeSpec {
            name: "bench_small_part".into(),
            width: 4,
            kinds: 2,
            tiles: 3,
            tile_gates: 16,
            seed: 7,
        };
        let dir = std::env::temp_dir().join("tmfrt_bench_large");
        let row = run_ingest_row_partitioned(&spec, &dir, Some(2), 2, 5).unwrap();
        let p = row.partition.expect("partition leg requested");
        assert!(p.blocks >= 1);
        assert!(p.phi > 0);
        assert!(p.luts > 0);
        assert!(p.map_secs > 0.0);
        assert!(p.block_secs > 0.0);
        // Ingestion-only rows carry no partition leg.
        let plain = run_ingest_row(&spec, &dir).unwrap();
        assert!(plain.partition.is_none());
    }

    #[test]
    fn verify_cycles_budget() {
        assert_eq!(verify_cycles_for(100), 16); // tiny: clamped up
        assert_eq!(verify_cycles_for(100_000), 16);
        assert_eq!(verify_cycles_for(300_000), 7);
        assert_eq!(verify_cycles_for(1_000_000), 2);
        assert_eq!(verify_cycles_for(usize::MAX / 2), 2); // clamped down
    }

    #[test]
    fn suite_respects_gate_cap() {
        let dir = std::env::temp_dir().join("tmfrt_bench_large");
        let rows = run_large_suite(Some(0), &dir).unwrap();
        assert!(rows.is_empty());
    }
}
