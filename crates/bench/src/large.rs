//! The large-workload ingestion suite: generate each `workloads::large`
//! preset to disk, then time the streaming front-end parsing and
//! flattening it.
//!
//! Unlike the Table-1 suite this measures the *front-end*, not the
//! mappers: the interesting numbers are file size, model/gate/FF
//! totals (deterministic for a preset — any drift is a generator or
//! linker regression) and the parse/flatten wall times (reported, and
//! zeroed in canonical artifacts like every other timing field).

use std::time::Instant;

/// One preset's ingestion measurement.
#[derive(Debug, Clone)]
pub struct IngestRow {
    /// Preset name (`hier100k`, …).
    pub name: String,
    /// Size of the generated BLIF file in bytes.
    pub file_bytes: u64,
    /// Models in the parsed file (top + tile kinds + blackbox).
    pub models: usize,
    /// Flattened gate count.
    pub gates: usize,
    /// Flattened FF count (total, per-edge).
    pub ffs: usize,
    /// Primary inputs of the flattened circuit.
    pub pis: usize,
    /// Primary outputs of the flattened circuit.
    pub pos: usize,
    /// Seconds to stream-parse the file into the AST.
    pub parse_secs: f64,
    /// Seconds for parse + hierarchy flattening.
    pub total_secs: f64,
    /// Process peak RSS (`VmHWM`) in KiB after the ingest, 0 when the
    /// probe is unavailable. Zeroed in canonical artifacts like every
    /// other environment-dependent measurement.
    pub peak_rss_kib: u64,
}

/// Generates `spec` into `dir` and ingests it through the streaming
/// front-end. The generated file is left in place (callers pass a temp
/// dir; CI reuses the file for `blifcheck`).
///
/// # Errors
///
/// Returns a message on I/O, parse or link failures, and when the
/// flattened totals disagree with the generator's closed-form counts
/// (which would mean the generator and linker drifted apart).
pub fn run_ingest_row(
    spec: &workloads::LargeSpec,
    dir: &std::path::Path,
) -> Result<IngestRow, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("creating `{}`: {e}", dir.display()))?;
    let path = dir.join(format!("{}.blif", spec.name));
    let f =
        std::fs::File::create(&path).map_err(|e| format!("creating `{}`: {e}", path.display()))?;
    let mut w = std::io::BufWriter::new(f);
    workloads::write_hier(spec, &mut w)
        .map_err(|e| format!("writing `{}`: {e}", path.display()))?;
    std::io::Write::flush(&mut w).map_err(|e| format!("flushing `{}`: {e}", path.display()))?;
    drop(w);
    let file_bytes = std::fs::metadata(&path)
        .map_err(|e| format!("stat `{}`: {e}", path.display()))?
        .len();

    let start = Instant::now();
    let file = blifio::parse_path(&path).map_err(|e| format!("parsing {}: {e}", spec.name))?;
    let parse_secs = start.elapsed().as_secs_f64();
    let circuit = blifio::flatten(&file, &blifio::LinkOptions::default())
        .map_err(|e| format!("flattening {}: {e}", spec.name))?;
    let total_secs = start.elapsed().as_secs_f64();

    if circuit.num_gates() != spec.flat_gates() || circuit.ff_count_total() != spec.flat_ffs() {
        return Err(format!(
            "{}: flattened totals drifted from the generator: \
             {} gates / {} FFs, expected {} / {}",
            spec.name,
            circuit.num_gates(),
            circuit.ff_count_total(),
            spec.flat_gates(),
            spec.flat_ffs()
        ));
    }

    Ok(IngestRow {
        name: spec.name.clone(),
        file_bytes,
        models: file.models.len(),
        gates: circuit.num_gates(),
        ffs: circuit.ff_count_total(),
        pis: circuit.inputs().len(),
        pos: circuit.outputs().len(),
        parse_secs,
        total_secs,
        peak_rss_kib: engine::mem::peak_rss_kib().unwrap_or(0),
    })
}

/// Runs the whole large suite (presets with at most `max_gates` flat
/// gates when given), in preset order.
///
/// # Errors
///
/// Returns the first failing preset's message.
pub fn run_large_suite(
    max_gates: Option<usize>,
    dir: &std::path::Path,
) -> Result<Vec<IngestRow>, String> {
    workloads::large_presets()
        .iter()
        .filter(|s| max_gates.is_none_or(|cap| s.flat_gates() <= cap))
        .map(|s| run_ingest_row(s, dir))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingest_row_on_small_spec() {
        let spec = workloads::LargeSpec {
            name: "bench_small".into(),
            width: 4,
            kinds: 2,
            tiles: 3,
            tile_gates: 16,
            seed: 7,
        };
        let dir = std::env::temp_dir().join("tmfrt_bench_large");
        let row = run_ingest_row(&spec, &dir).unwrap();
        assert_eq!(row.gates, spec.flat_gates());
        assert_eq!(row.ffs, spec.flat_ffs());
        assert_eq!(row.models, 1 + spec.kinds + 1);
        assert_eq!(row.pis, spec.width);
        assert_eq!(row.pos, spec.width);
        assert!(row.file_bytes > 0);
        assert!(row.total_secs >= row.parse_secs);
    }

    #[test]
    fn suite_respects_gate_cap() {
        let dir = std::env::temp_dir().join("tmfrt_bench_large");
        let rows = run_large_suite(Some(0), &dir).unwrap();
        assert!(rows.is_empty());
    }
}
