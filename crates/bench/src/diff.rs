//! Bench-regression analysis: compare two `turbomap-bench/*` artifacts
//! of the same family (`table1/v*` mapping runs, or `large/v*`
//! ingestion runs).
//!
//! The `benchdiff` binary reads a **baseline** artifact (typically the
//! committed `BENCH_table1.json` or `BENCH_large.json`) and a
//! **candidate** artifact (a fresh run) and reports per-circuit deltas
//! on the quality metrics (Φ, LUT count for table1; file/model/gate/FF
//! totals for large — deterministic, so any change is signal), wall
//! time, and histogram quantiles (p50/p90/p99 of each recorded
//! distribution).
//!
//! Regression policy:
//!
//! * any **quality** change (Φ or LUTs up for any algorithm, a circuit
//!   disappearing, a status downgrade) is a regression — these are
//!   deterministic and must be byte-stable run-to-run;
//! * a **wall-time** increase beyond the configurable fractional
//!   threshold is a regression, *unless* either artifact is canonical
//!   (canonical artifacts zero all timing, so wall deltas are
//!   meaningless there);
//! * with [`DiffOptions::mem_threshold`] set, a **peak-memory** increase
//!   beyond that fraction gates too — per-job peak heap for table1 rows
//!   (`job_mem.peak_heap_bytes`, schema v3), peak RSS for large rows —
//!   again skipped when either artifact is canonical (canonical
//!   artifacts omit memory, which is allocator-dependent);
//! * histogram quantile shifts are reported but never gate — they are
//!   scheduling-sensitive distributions, not acceptance criteria.
//!
//! When a wall or memory gate trips, the offending **phase** is named:
//! the diff scans the v3 per-phase breakdowns (`job_mem_phases`, falling
//! back to the per-algorithm `mem_phases` and to the v2 wall-only
//! `job_phases`) and appends `attributed to phase \`<name>\`` with the
//! phase's own before/after numbers to the regression line, so CI logs
//! point at the subsystem, not just the circuit.
//!
//! The rendered report is byte-deterministic for a given pair of
//! artifacts: circuits sort by name, floats render through the same
//! fixed-precision formatter everywhere.

use engine::JsonValue;

/// Diff tuning.
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// Allowed fractional wall-time increase per circuit before the
    /// diff counts a regression (0.25 = +25%).
    pub wall_threshold: f64,
    /// Gate on quality (Φ/LUTs/status) changes. On by default; turning
    /// it off limits gating to wall time.
    pub quality_gate: bool,
    /// Allowed fractional peak-memory increase per circuit before the
    /// diff counts a regression (`Some(0.25)` = +25%). `None` (the
    /// default) disables the memory gate entirely.
    pub mem_threshold: Option<f64>,
    /// Minimum vectorization speedup (`verify_scalar_secs /
    /// verify_secs`) required of every large-suite row, e.g.
    /// `Some(2.0)` = the vector engine must beat the scalar engine 2×
    /// on the verify phase. Unlike the wall gate this only needs the
    /// *candidate* to carry real timings — the ratio is
    /// machine-relative, so a canonical baseline is fine. `None` (the
    /// default) disables the gate.
    pub verify_speedup: Option<f64>,
    /// Φ-gap mode for partitioned-vs-monolithic comparisons: the
    /// candidate's `phi` may exceed the baseline's by up to this much
    /// per circuit before the diff counts a regression (partitioning
    /// freezes seam lags, so Φ can only stay equal or grow). LUT
    /// deltas are reported but never gated in this mode — duplicated
    /// boundary logic makes them incomparable. `None` (the default)
    /// keeps the exact quality gate.
    pub phi_gap: Option<u64>,
}

impl Default for DiffOptions {
    fn default() -> DiffOptions {
        DiffOptions {
            wall_threshold: 0.25,
            quality_gate: true,
            mem_threshold: None,
            verify_speedup: None,
            phi_gap: None,
        }
    }
}

/// One circuit's comparison.
#[derive(Debug)]
pub struct CircuitDiff {
    /// Circuit name.
    pub name: String,
    /// Informational delta lines (empty when nothing changed).
    pub notes: Vec<String>,
    /// Regression lines (a subset of the signal in `notes`).
    pub regressions: Vec<String>,
}

/// The full diff.
#[derive(Debug)]
pub struct DiffReport {
    /// Per-circuit comparisons, sorted by name.
    pub circuits: Vec<CircuitDiff>,
    /// All regression lines, prefixed with their circuit name.
    pub regressions: Vec<String>,
    /// True when wall-time gating was skipped (canonical artifact).
    pub wall_skipped: bool,
    /// True when the memory gate was requested but skipped (canonical
    /// artifact: memory breakdowns omitted).
    pub mem_skipped: bool,
    /// True when the verify-speedup gate was requested but skipped
    /// (canonical candidate: verify timings zeroed).
    pub verify_skipped: bool,
}

impl DiffReport {
    /// True when the candidate passes the gate.
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty()
    }
}

fn as_f64(v: &JsonValue) -> Option<f64> {
    match v {
        JsonValue::Float(f) => Some(*f),
        JsonValue::UInt(u) => Some(*u as f64),
        JsonValue::Int(i) => Some(*i as f64),
        _ => None,
    }
}

fn fmt_secs(s: f64) -> String {
    format!("{s:.4}s")
}

/// The three per-algorithm result objects of a circuit row.
const ALGORITHMS: [&str; 3] = ["flowmap_frt", "turbomap", "turbomap_frt"];

/// Quality fields compared per algorithm (deterministic; up = worse).
const QUALITY_FIELDS: [&str; 2] = ["phi", "luts"];

/// Structural fields of a `turbomap-bench/large/*` ingestion row.
/// Deterministic per preset, so *any* change — either direction — is a
/// generator or front-end regression.
const STRUCT_FIELDS: [&str; 12] = [
    "file_bytes",
    "models",
    "gates",
    "ffs",
    "pis",
    "pos",
    "verify_lanes",
    "verify_cycles",
    // Partitioned-mapping fields (large/v4, `--partitions` runs only):
    // deterministic per preset + block count, like the rest.
    "partition_blocks",
    "partition_cut_ffs",
    "partition_phi",
    "partition_luts",
];

fn circuit_map(doc: &JsonValue) -> Result<Vec<(String, &JsonValue)>, String> {
    let arr = doc
        .get("circuits")
        .and_then(|c| c.as_array())
        .ok_or("artifact has no `circuits` array")?;
    let mut out = Vec::with_capacity(arr.len());
    for c in arr {
        let name = c
            .get("name")
            .and_then(|n| n.as_str())
            .ok_or("circuit entry without `name`")?;
        out.push((name.to_string(), c));
    }
    Ok(out)
}

/// Known artifact families (the path segment between `turbomap-bench/`
/// and the version).
const FAMILIES: [&str; 2] = ["table1", "large"];

/// Validates the schema and returns the artifact family.
fn check_schema<'a>(doc: &'a JsonValue, which: &str) -> Result<&'a str, String> {
    let schema = doc
        .get("schema")
        .and_then(|s| s.as_str())
        .ok_or_else(|| format!("{which}: missing `schema` field"))?;
    for family in FAMILIES {
        if schema.starts_with(&format!("turbomap-bench/{family}/")) {
            return Ok(family);
        }
    }
    Err(format!("{which}: unsupported schema `{schema}`"))
}

fn is_canonical(doc: &JsonValue) -> bool {
    matches!(doc.get("canonical"), Some(JsonValue::Bool(true)))
}

/// Compares every histogram under `key` (e.g. `histograms`) of two
/// algorithm or circuit objects; emits note lines for quantile shifts.
fn diff_hists(base: &JsonValue, cand: &JsonValue, key: &str, scope: &str, notes: &mut Vec<String>) {
    let (Some(JsonValue::Object(b)), Some(JsonValue::Object(c))) = (base.get(key), cand.get(key))
    else {
        return;
    };
    for (hist_name, bh) in b {
        let Some(ch) = c.iter().find(|(k, _)| k == hist_name).map(|(_, v)| v) else {
            continue;
        };
        for q in ["p50", "p90", "p99"] {
            let bv = bh.get(q).and_then(|v| v.as_u64());
            let cv = ch.get(q).and_then(|v| v.as_u64());
            if let (Some(bv), Some(cv)) = (bv, cv) {
                if bv != cv {
                    notes.push(format!("{scope}.{hist_name}.{q}: {bv} -> {cv}"));
                }
            }
        }
    }
}

fn add_phase(out: &mut Vec<(String, f64, u64)>, name: &str, wall: f64, peak: u64) {
    if let Some(e) = out.iter_mut().find(|(n, _, _)| n == name) {
        e.1 += wall;
        e.2 = e.2.max(peak);
    } else {
        out.push((name.to_string(), wall, peak));
    }
}

fn collect_mem_phases(obj: &JsonValue, out: &mut Vec<(String, f64, u64)>) {
    let JsonValue::Object(pairs) = obj else {
        return;
    };
    for (name, p) in pairs {
        let wall = p.get("wall_secs").and_then(as_f64).unwrap_or(0.0);
        let peak = p
            .get("peak_heap_bytes")
            .and_then(|v| v.as_u64())
            .unwrap_or(0);
        add_phase(out, name, wall, peak);
    }
}

/// Per-phase `(name, wall_secs, peak_heap_bytes)` profile of a circuit
/// row. Prefers the v3 job-level `job_mem_phases`, falls back to the
/// per-algorithm `mem_phases` (walls summed, peaks max'd — peaks are
/// high-water marks, not flows), and finally to the v2 wall-only
/// `job_phases`. Sorted by name so attribution is deterministic.
fn phase_profile(row: &JsonValue) -> Vec<(String, f64, u64)> {
    let mut out = Vec::new();
    if let Some(jmp) = row.get("job_mem_phases") {
        collect_mem_phases(jmp, &mut out);
    } else {
        for alg in ALGORITHMS {
            if let Some(mp) = row.get(alg).and_then(|a| a.get("mem_phases")) {
                collect_mem_phases(mp, &mut out);
            }
        }
    }
    if out.is_empty() {
        if let Some(JsonValue::Object(pairs)) = row.get("job_phases") {
            for (name, v) in pairs {
                if let Some(w) = as_f64(v) {
                    if w > 0.0 {
                        add_phase(&mut out, name, w, 0);
                    }
                }
            }
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Names the phase whose wall time (or, with `by_peak`, peak heap) grew
/// the most between the two rows, with its own before/after numbers.
/// `None` when no phase grew or no breakdown exists on the candidate.
fn attribute(base: &JsonValue, cand: &JsonValue, by_peak: bool) -> Option<String> {
    let bp = phase_profile(base);
    let cp = phase_profile(cand);
    let mut best: Option<(f64, String)> = None;
    for (name, cw, cpk) in &cp {
        let (bw, bpk) = bp
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, w, p)| (*w, *p))
            .unwrap_or((0.0, 0));
        let delta = if by_peak {
            *cpk as f64 - bpk as f64
        } else {
            cw - bw
        };
        if delta <= 0.0 {
            continue;
        }
        if best.as_ref().is_none_or(|(d, _)| delta > *d) {
            let line = if by_peak {
                format!("`{name}` (peak heap {bpk} -> {cpk} bytes)")
            } else {
                format!("`{name}` (wall {} -> {})", fmt_secs(bw), fmt_secs(*cw))
            };
            best = Some((delta, line));
        }
    }
    best.map(|(_, l)| l)
}

/// Per-job peak memory of a circuit row in bytes: the v3 heap ledger
/// for table1 rows, peak RSS for large ingestion rows.
fn row_peak_bytes(row: &JsonValue) -> Option<u64> {
    row.get("job_mem")
        .and_then(|m| m.get("peak_heap_bytes"))
        .and_then(|v| v.as_u64())
        .or_else(|| {
            row.get("peak_rss_kib")
                .and_then(|v| v.as_u64())
                .filter(|&k| k > 0)
                .map(|k| k * 1024)
        })
}

fn diff_circuit(
    name: &str,
    base: &JsonValue,
    cand: &JsonValue,
    opts: &DiffOptions,
    wall_comparable: bool,
    cand_timed: bool,
) -> CircuitDiff {
    let mut notes = Vec::new();
    let mut regressions = Vec::new();

    let bstatus = base.get("status").and_then(|s| s.as_str()).unwrap_or("?");
    let cstatus = cand.get("status").and_then(|s| s.as_str()).unwrap_or("?");
    if bstatus != cstatus {
        let line = format!("status: {bstatus} -> {cstatus}");
        if cstatus != "ok" && opts.quality_gate {
            regressions.push(line.clone());
        }
        notes.push(line);
        // Different status shapes carry different fields; stop here.
        return CircuitDiff {
            name: name.to_string(),
            notes,
            regressions,
        };
    }

    for alg in ALGORITHMS {
        let (Some(b), Some(c)) = (base.get(alg), cand.get(alg)) else {
            continue;
        };
        for field in QUALITY_FIELDS {
            let bv = b.get(field).and_then(|v| v.as_u64());
            let cv = c.get(field).and_then(|v| v.as_u64());
            if let (Some(bv), Some(cv)) = (bv, cv) {
                if bv != cv {
                    let line = format!("{alg}.{field}: {bv} -> {cv}");
                    // Under `--phi-gap` the candidate is a partitioned
                    // mapping: Φ regresses only past the allowed gap,
                    // and LUT deltas are informational.
                    let worse = match (field, opts.phi_gap) {
                        ("phi", Some(gap)) => cv > bv.saturating_add(gap),
                        (_, Some(_)) => false,
                        (_, None) => cv > bv,
                    };
                    if worse && opts.quality_gate {
                        regressions.push(line.clone());
                    }
                    notes.push(line);
                }
            }
        }
        diff_hists(b, c, "histograms", alg, &mut notes);
    }
    // Ingestion-row structural fields (large family; absent on table1
    // rows). Exact match required in both directions.
    for field in STRUCT_FIELDS {
        let bv = base.get(field).and_then(|v| v.as_u64());
        let cv = cand.get(field).and_then(|v| v.as_u64());
        if let (Some(bv), Some(cv)) = (bv, cv) {
            if bv != cv {
                let line = format!("{field}: {bv} -> {cv}");
                if opts.quality_gate {
                    regressions.push(line.clone());
                }
                notes.push(line);
            }
        }
    }
    diff_hists(base, cand, "job_histograms", "job", &mut notes);

    let bwall = base.get("wall_secs").and_then(as_f64);
    let cwall = cand.get("wall_secs").and_then(as_f64);
    if let (Some(bw), Some(cw)) = (bwall, cwall) {
        if wall_comparable && bw > 0.0 {
            let ratio = cw / bw;
            if (ratio - 1.0).abs() > 1e-9 {
                let mut line = format!(
                    "wall: {} -> {} ({:+.1}%)",
                    fmt_secs(bw),
                    fmt_secs(cw),
                    (ratio - 1.0) * 100.0
                );
                if ratio > 1.0 + opts.wall_threshold {
                    if let Some(attr) = attribute(base, cand, false) {
                        line = format!("{line}; attributed to phase {attr}");
                    }
                    regressions.push(line.clone());
                }
                notes.push(line);
            }
        }
    }

    if let Some(mem_threshold) = opts.mem_threshold {
        // wall_comparable doubles as the memory-comparability condition:
        // both gates need two non-canonical artifacts.
        if let (true, Some(bp), Some(cp)) =
            (wall_comparable, row_peak_bytes(base), row_peak_bytes(cand))
        {
            if bp > 0 {
                let ratio = cp as f64 / bp as f64;
                if (ratio - 1.0).abs() > 1e-9 {
                    let mut line = format!(
                        "mem: peak {bp} -> {cp} bytes ({:+.1}%)",
                        (ratio - 1.0) * 100.0
                    );
                    if ratio > 1.0 + mem_threshold {
                        if let Some(attr) = attribute(base, cand, true) {
                            line = format!("{line}; attributed to phase {attr}");
                        }
                        regressions.push(line.clone());
                    }
                    notes.push(line);
                }
            }
        }
    }

    if let Some(min) = opts.verify_speedup {
        // Candidate-only gate: the speedup ratio compares the two
        // engines on the same machine and run, so a canonical baseline
        // doesn't block it — only a canonical (zero-timing) candidate.
        let cv = cand.get("verify_secs").and_then(as_f64);
        let cs = cand.get("verify_scalar_secs").and_then(as_f64);
        if let (true, Some(cv), Some(cs)) = (cand_timed, cv, cs) {
            if cv > 0.0 && cs > 0.0 {
                let ratio = cs / cv;
                let line = format!(
                    "verify speedup: {:.1}x (scalar {} / vector {}; floor {min:.1}x)",
                    ratio,
                    fmt_secs(cs),
                    fmt_secs(cv)
                );
                if ratio < min {
                    regressions.push(line.clone());
                }
                notes.push(line);
            }
        }
    }

    CircuitDiff {
        name: name.to_string(),
        notes,
        regressions,
    }
}

/// Diffs two parsed artifacts.
///
/// # Errors
///
/// Returns a message when either document is not a table1 artifact.
pub fn diff_artifacts(
    base: &JsonValue,
    cand: &JsonValue,
    opts: &DiffOptions,
) -> Result<DiffReport, String> {
    let base_family = check_schema(base, "baseline")?;
    let cand_family = check_schema(cand, "candidate")?;
    if base_family != cand_family {
        return Err(format!(
            "artifact families differ: baseline is `{base_family}`, candidate is `{cand_family}`"
        ));
    }
    let cand_timed = !is_canonical(cand);
    let wall_comparable = !is_canonical(base) && cand_timed;
    let base_map = circuit_map(base)?;
    let cand_map = circuit_map(cand)?;

    let mut names: Vec<String> = base_map.iter().map(|(n, _)| n.clone()).collect();
    for (n, _) in &cand_map {
        if !names.contains(n) {
            names.push(n.clone());
        }
    }
    names.sort();

    let mut circuits = Vec::new();
    let mut regressions = Vec::new();
    for name in &names {
        let b = base_map.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        let c = cand_map.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        let diff = match (b, c) {
            (Some(b), Some(c)) => diff_circuit(name, b, c, opts, wall_comparable, cand_timed),
            (Some(_), None) => CircuitDiff {
                name: name.clone(),
                notes: vec!["missing from candidate".into()],
                regressions: if opts.quality_gate {
                    vec!["missing from candidate".into()]
                } else {
                    Vec::new()
                },
            },
            (None, Some(_)) => CircuitDiff {
                name: name.clone(),
                notes: vec!["new in candidate".into()],
                regressions: Vec::new(),
            },
            (None, None) => unreachable!("name came from one of the maps"),
        };
        for r in &diff.regressions {
            regressions.push(format!("{name}: {r}"));
        }
        circuits.push(diff);
    }
    Ok(DiffReport {
        circuits,
        regressions,
        wall_skipped: !wall_comparable,
        mem_skipped: opts.mem_threshold.is_some() && !wall_comparable,
        verify_skipped: opts.verify_speedup.is_some() && !cand_timed,
    })
}

/// Renders the report (byte-deterministic for a given artifact pair).
pub fn render_report(report: &DiffReport) -> String {
    let mut out = String::new();
    let changed: Vec<&CircuitDiff> = report
        .circuits
        .iter()
        .filter(|c| !c.notes.is_empty())
        .collect();
    out.push_str(&format!(
        "benchdiff: {} circuits compared, {} changed, {} regression(s)\n",
        report.circuits.len(),
        changed.len(),
        report.regressions.len()
    ));
    if report.wall_skipped {
        out.push_str("wall-time gate skipped: canonical artifact (timing zeroed)\n");
    }
    if report.mem_skipped {
        out.push_str("memory gate skipped: canonical artifact (memory omitted)\n");
    }
    if report.verify_skipped {
        out.push_str("verify-speedup gate skipped: canonical candidate (timing zeroed)\n");
    }
    for c in &changed {
        out.push_str(&format!("--- {}\n", c.name));
        for note in &c.notes {
            let marker = if c.regressions.contains(note) {
                "!"
            } else {
                " "
            };
            out.push_str(&format!("  {marker} {note}\n"));
        }
    }
    if report.regressions.is_empty() {
        out.push_str("PASS\n");
    } else {
        out.push_str("FAIL\n");
        for r in &report.regressions {
            out.push_str(&format!("  regression: {r}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(phi: u64, luts: u64, wall: f64, canonical: bool) -> JsonValue {
        let alg = |phi: u64, luts: u64| {
            JsonValue::object(vec![
                ("phi", JsonValue::UInt(phi)),
                ("luts", JsonValue::UInt(luts)),
                (
                    "histograms",
                    JsonValue::object(vec![(
                        "cut_size",
                        JsonValue::object(vec![
                            ("p50", JsonValue::UInt(3)),
                            ("p90", JsonValue::UInt(phi.max(3))),
                            ("p99", JsonValue::UInt(7)),
                        ]),
                    )]),
                ),
            ])
        };
        JsonValue::object(vec![
            ("schema", JsonValue::str("turbomap-bench/table1/v2")),
            ("canonical", JsonValue::Bool(canonical)),
            (
                "circuits",
                JsonValue::Array(vec![JsonValue::object(vec![
                    ("name", JsonValue::str("s27")),
                    ("status", JsonValue::str("ok")),
                    ("flowmap_frt", alg(phi + 1, luts + 2)),
                    ("turbomap", alg(phi, luts)),
                    ("turbomap_frt", alg(phi, luts)),
                    ("wall_secs", JsonValue::Float(wall)),
                ])]),
            ),
        ])
    }

    #[test]
    fn identical_artifacts_pass() {
        let a = artifact(3, 10, 1.0, false);
        let report = diff_artifacts(&a, &a, &DiffOptions::default()).unwrap();
        assert!(report.is_clean());
        let text = render_report(&report);
        assert!(text.contains("0 regression(s)"));
        assert!(text.ends_with("PASS\n"));
        // Byte-deterministic.
        assert_eq!(text, render_report(&report));
    }

    #[test]
    fn quality_regression_gates() {
        let base = artifact(3, 10, 1.0, false);
        let cand = artifact(4, 10, 1.0, false); // Φ worse everywhere
        let report = diff_artifacts(&base, &cand, &DiffOptions::default()).unwrap();
        assert!(!report.is_clean());
        let text = render_report(&report);
        assert!(text.contains("turbomap_frt.phi: 3 -> 4"), "{text}");
        assert!(text.contains("FAIL"), "{text}");
        // Quality improvements do not gate.
        let report = diff_artifacts(&cand, &base, &DiffOptions::default()).unwrap();
        assert!(report.is_clean());
        // Quality gate can be disabled.
        let opts = DiffOptions {
            quality_gate: false,
            ..DiffOptions::default()
        };
        let report = diff_artifacts(&base, &cand, &opts).unwrap();
        assert!(report.is_clean());
    }

    #[test]
    fn phi_gap_relaxes_quality_gate() {
        let opts = DiffOptions {
            phi_gap: Some(1),
            ..DiffOptions::default()
        };
        let base = artifact(3, 10, 1.0, false);
        // Φ +1 and LUTs +5: both inside the gap — reported, not gated.
        let cand = artifact(4, 15, 1.0, false);
        let report = diff_artifacts(&base, &cand, &opts).unwrap();
        assert!(report.is_clean(), "{:?}", report.regressions);
        let text = render_report(&report);
        assert!(text.contains("turbomap_frt.phi: 3 -> 4"), "{text}");
        assert!(text.contains("turbomap_frt.luts: 10 -> 15"), "{text}");
        // Φ +2 exceeds a gap of 1: gated.
        let cand = artifact(5, 10, 1.0, false);
        let report = diff_artifacts(&base, &cand, &opts).unwrap();
        assert!(!report.is_clean());
        assert!(
            report
                .regressions
                .iter()
                .any(|r| r.contains(".phi: 3 -> 5")),
            "{:?}",
            report.regressions
        );
        // Only Φ entries gate in gap mode — no LUT regressions.
        assert!(
            report.regressions.iter().all(|r| !r.contains(".luts")),
            "{:?}",
            report.regressions
        );
    }

    #[test]
    fn wall_regression_gates_past_threshold() {
        let base = artifact(3, 10, 1.0, false);
        let slow = artifact(3, 10, 1.5, false); // +50% > default 25%
        let report = diff_artifacts(&base, &slow, &DiffOptions::default()).unwrap();
        assert_eq!(report.regressions.len(), 1);
        assert!(report.regressions[0].contains("wall"), "{report:?}");
        // Within threshold: reported but not gated.
        let ok = artifact(3, 10, 1.1, false);
        let report = diff_artifacts(&base, &ok, &DiffOptions::default()).unwrap();
        assert!(report.is_clean());
        assert!(!report.circuits[0].notes.is_empty());
        // Custom threshold.
        let opts = DiffOptions {
            wall_threshold: 0.05,
            ..DiffOptions::default()
        };
        let report = diff_artifacts(&base, &ok, &opts).unwrap();
        assert!(!report.is_clean());
    }

    #[test]
    fn canonical_artifacts_skip_wall_gate() {
        let base = artifact(3, 10, 0.0, true);
        let cand = artifact(3, 10, 0.0, true);
        let report = diff_artifacts(&base, &cand, &DiffOptions::default()).unwrap();
        assert!(report.is_clean());
        assert!(report.wall_skipped);
        assert!(render_report(&report).contains("wall-time gate skipped"));
    }

    #[test]
    fn missing_circuit_is_a_regression_and_schema_checked() {
        let base = artifact(3, 10, 1.0, false);
        let mut cand = artifact(3, 10, 1.0, false);
        if let JsonValue::Object(pairs) = &mut cand {
            for (k, v) in pairs.iter_mut() {
                if k == "circuits" {
                    *v = JsonValue::Array(Vec::new());
                }
            }
        }
        let report = diff_artifacts(&base, &cand, &DiffOptions::default()).unwrap();
        assert_eq!(report.regressions.len(), 1);
        assert!(report.regressions[0].contains("missing from candidate"));

        let bogus = JsonValue::object(vec![("schema", JsonValue::str("other/v9"))]);
        assert!(diff_artifacts(&bogus, &base, &DiffOptions::default()).is_err());
    }

    fn large_artifact(gates: u64, bytes: u64, wall: f64) -> JsonValue {
        JsonValue::object(vec![
            ("schema", JsonValue::str("turbomap-bench/large/v1")),
            ("canonical", JsonValue::Bool(false)),
            (
                "circuits",
                JsonValue::Array(vec![JsonValue::object(vec![
                    ("name", JsonValue::str("hier100k")),
                    ("status", JsonValue::str("ok")),
                    ("file_bytes", JsonValue::UInt(bytes)),
                    ("models", JsonValue::UInt(6)),
                    ("gates", JsonValue::UInt(gates)),
                    ("ffs", JsonValue::UInt(768)),
                    ("pis", JsonValue::UInt(32)),
                    ("pos", JsonValue::UInt(32)),
                    ("wall_secs", JsonValue::Float(wall)),
                ])]),
            ),
        ])
    }

    /// A `large/v3` row with the verify-phase fields.
    fn large_v3_artifact(canonical: bool, verify: f64, scalar: f64) -> JsonValue {
        let z = |v: f64| JsonValue::Float(if canonical { 0.0 } else { v });
        JsonValue::object(vec![
            ("schema", JsonValue::str("turbomap-bench/large/v3")),
            ("canonical", JsonValue::Bool(canonical)),
            (
                "circuits",
                JsonValue::Array(vec![JsonValue::object(vec![
                    ("name", JsonValue::str("hier100k")),
                    ("status", JsonValue::str("ok")),
                    ("file_bytes", JsonValue::UInt(509325)),
                    ("models", JsonValue::UInt(6)),
                    ("gates", JsonValue::UInt(99136)),
                    ("ffs", JsonValue::UInt(768)),
                    ("pis", JsonValue::UInt(32)),
                    ("pos", JsonValue::UInt(32)),
                    ("verify_lanes", JsonValue::UInt(64)),
                    ("verify_cycles", JsonValue::UInt(16)),
                    ("parse_secs", z(0.3)),
                    ("verify_secs", z(verify)),
                    ("verify_scalar_secs", z(scalar)),
                    ("wall_secs", z(1.0 + verify)),
                ])]),
            ),
        ])
    }

    #[test]
    fn verify_speedup_gate_needs_only_a_timed_candidate() {
        let opts = DiffOptions {
            verify_speedup: Some(2.0),
            ..DiffOptions::default()
        };
        // Canonical baseline (the checked-in artifact) + timed
        // candidate: the gate still runs — the ratio is machine-local.
        let base = large_v3_artifact(true, 0.0, 0.0);
        let fast = large_v3_artifact(false, 0.01, 0.6); // 60x
        let report = diff_artifacts(&base, &fast, &opts).unwrap();
        assert!(report.is_clean(), "{:?}", report.regressions);
        assert!(!report.verify_skipped);
        assert!(report.circuits[0]
            .notes
            .iter()
            .any(|n| n.contains("verify speedup: 60.0x")));

        // A candidate whose vector engine lost its edge gates.
        let slow = large_v3_artifact(false, 0.5, 0.6); // 1.2x < 2.0 floor
        let report = diff_artifacts(&base, &slow, &opts).unwrap();
        assert_eq!(report.regressions.len(), 1);
        assert!(
            report.regressions[0].contains("verify speedup: 1.2x"),
            "{:?}",
            report.regressions
        );

        // Canonical candidate: gate skipped, and says so.
        let report = diff_artifacts(&base, &base, &opts).unwrap();
        assert!(report.is_clean());
        assert!(report.verify_skipped);
        assert!(render_report(&report).contains("verify-speedup gate skipped"));

        // Gate off by default even with timed rows.
        let report = diff_artifacts(&base, &slow, &DiffOptions::default()).unwrap();
        assert!(report.is_clean());
    }

    #[test]
    fn verify_shape_drift_is_structural() {
        let base = large_v3_artifact(true, 0.0, 0.0);
        let mut cand = large_v3_artifact(true, 0.0, 0.0);
        // Mutate verify_cycles: deterministic per preset, so any drift
        // (here 16 -> 8) must gate even between canonical artifacts.
        if let JsonValue::Object(pairs) = &mut cand {
            for (k, v) in pairs.iter_mut() {
                if k != "circuits" {
                    continue;
                }
                if let JsonValue::Array(rows) = v {
                    if let JsonValue::Object(row) = &mut rows[0] {
                        for (rk, rv) in row.iter_mut() {
                            if rk == "verify_cycles" {
                                *rv = JsonValue::UInt(8);
                            }
                        }
                    }
                }
            }
        }
        let report = diff_artifacts(&base, &cand, &DiffOptions::default()).unwrap();
        assert_eq!(report.regressions.len(), 1);
        assert!(
            report.regressions[0].contains("verify_cycles: 16 -> 8"),
            "{:?}",
            report.regressions
        );
    }

    #[test]
    fn large_structural_drift_gates_both_directions() {
        let base = large_artifact(99136, 509325, 1.0);
        let report = diff_artifacts(&base, &base, &DiffOptions::default()).unwrap();
        assert!(report.is_clean());
        // Gate count *down* still gates: structural fields are exact.
        let cand = large_artifact(99000, 509325, 1.0);
        let report = diff_artifacts(&base, &cand, &DiffOptions::default()).unwrap();
        assert_eq!(report.regressions.len(), 1);
        assert!(report.regressions[0].contains("gates: 99136 -> 99000"));
        // File size drift gates too.
        let cand = large_artifact(99136, 509326, 1.0);
        let report = diff_artifacts(&base, &cand, &DiffOptions::default()).unwrap();
        assert!(!report.is_clean());
        // Wall-time still uses the threshold, not exact match.
        let cand = large_artifact(99136, 509325, 1.1);
        let report = diff_artifacts(&base, &cand, &DiffOptions::default()).unwrap();
        assert!(report.is_clean());
        assert!(!report.circuits[0].notes.is_empty());
    }

    /// A v3-shaped artifact: one circuit with a job-level memory ledger
    /// and a two-phase breakdown (`frtcheck_sweep` = the LabelUpdate
    /// sweeps, `min_cut`).
    fn mem_artifact(wall: f64, sweep_wall: f64, peak: u64, sweep_peak: u64) -> JsonValue {
        let phase = |wall: f64, peak: u64, allocs: u64| {
            JsonValue::object(vec![
                ("wall_secs", JsonValue::Float(wall)),
                ("peak_heap_bytes", JsonValue::UInt(peak)),
                ("allocs", JsonValue::UInt(allocs)),
                ("alloc_bytes", JsonValue::UInt(peak * 2)),
            ])
        };
        JsonValue::object(vec![
            ("schema", JsonValue::str("turbomap-bench/table1/v3")),
            ("canonical", JsonValue::Bool(false)),
            (
                "circuits",
                JsonValue::Array(vec![JsonValue::object(vec![
                    ("name", JsonValue::str("s27")),
                    ("status", JsonValue::str("ok")),
                    ("wall_secs", JsonValue::Float(wall)),
                    (
                        "job_mem_phases",
                        JsonValue::object(vec![
                            ("frtcheck_sweep", phase(sweep_wall, sweep_peak, 50)),
                            ("min_cut", phase(0.2, 4_000, 10)),
                        ]),
                    ),
                    (
                        "job_mem",
                        JsonValue::object(vec![
                            ("peak_heap_bytes", JsonValue::UInt(peak)),
                            ("allocs", JsonValue::UInt(60)),
                            ("frees", JsonValue::UInt(60)),
                            ("alloc_bytes", JsonValue::UInt(peak * 3)),
                            ("free_bytes", JsonValue::UInt(peak * 3)),
                        ]),
                    ),
                ])]),
            ),
        ])
    }

    #[test]
    fn wall_regression_names_the_inflated_phase() {
        // The acceptance scenario: the LabelUpdate sweep's wall doubles
        // (0.7s -> 1.4s), dragging the job from 1.0s to 1.7s. The gate
        // must not just flag the circuit — it must name `frtcheck_sweep`.
        let base = mem_artifact(1.0, 0.7, 10_000, 8_000);
        let cand = mem_artifact(1.7, 1.4, 10_000, 8_000);
        let report = diff_artifacts(&base, &cand, &DiffOptions::default()).unwrap();
        assert_eq!(report.regressions.len(), 1);
        let r = &report.regressions[0];
        assert!(
            r.contains("attributed to phase `frtcheck_sweep` (wall 0.7000s -> 1.4000s)"),
            "{r}"
        );
        assert!(render_report(&report).contains("frtcheck_sweep"));
    }

    #[test]
    fn wall_attribution_falls_back_to_v2_job_phases() {
        // No v3 memory objects at all — a v2 baseline still attributes
        // through the wall-only `job_phases` object.
        let v2 = |wall: f64, sweep: f64| {
            JsonValue::object(vec![
                ("schema", JsonValue::str("turbomap-bench/table1/v2")),
                ("canonical", JsonValue::Bool(false)),
                (
                    "circuits",
                    JsonValue::Array(vec![JsonValue::object(vec![
                        ("name", JsonValue::str("s27")),
                        ("status", JsonValue::str("ok")),
                        ("wall_secs", JsonValue::Float(wall)),
                        (
                            "job_phases",
                            JsonValue::object(vec![
                                ("frtcheck_sweep", JsonValue::Float(sweep)),
                                ("min_cut", JsonValue::Float(0.1)),
                            ]),
                        ),
                    ])]),
                ),
            ])
        };
        let report = diff_artifacts(&v2(1.0, 0.6), &v2(1.6, 1.2), &DiffOptions::default()).unwrap();
        assert_eq!(report.regressions.len(), 1);
        assert!(
            report.regressions[0].contains("attributed to phase `frtcheck_sweep`"),
            "{:?}",
            report.regressions
        );
    }

    #[test]
    fn mem_gate_fires_past_threshold_and_names_the_phase() {
        let base = mem_artifact(1.0, 0.7, 10_000, 8_000);
        let bloated = mem_artifact(1.0, 0.7, 20_000, 18_000);
        // Off by default: peak doubling is note-worthy only when asked.
        let report = diff_artifacts(&base, &bloated, &DiffOptions::default()).unwrap();
        assert!(report.is_clean());
        // With the gate on, +100% > 25% fails and names the phase whose
        // peak grew.
        let opts = DiffOptions {
            mem_threshold: Some(0.25),
            ..DiffOptions::default()
        };
        let report = diff_artifacts(&base, &bloated, &opts).unwrap();
        assert_eq!(report.regressions.len(), 1);
        let r = &report.regressions[0];
        assert!(
            r.contains("mem: peak 10000 -> 20000 bytes (+100.0%)"),
            "{r}"
        );
        assert!(
            r.contains("attributed to phase `frtcheck_sweep` (peak heap 8000 -> 18000 bytes)"),
            "{r}"
        );
        // Within threshold: reported but not gated.
        let ok = mem_artifact(1.0, 0.7, 11_000, 8_800);
        let report = diff_artifacts(&base, &ok, &opts).unwrap();
        assert!(report.is_clean());
        assert!(report.circuits[0]
            .notes
            .iter()
            .any(|n| n.starts_with("mem: peak")));
    }

    #[test]
    fn mem_gate_skipped_on_canonical_artifacts() {
        let base = artifact(3, 10, 0.0, true);
        let opts = DiffOptions {
            mem_threshold: Some(0.25),
            ..DiffOptions::default()
        };
        let report = diff_artifacts(&base, &base, &opts).unwrap();
        assert!(report.is_clean());
        assert!(report.mem_skipped);
        assert!(render_report(&report).contains("memory gate skipped"));
        // Not flagged as skipped when the gate was never requested.
        let report = diff_artifacts(&base, &base, &DiffOptions::default()).unwrap();
        assert!(!report.mem_skipped);
    }

    #[test]
    fn mem_gate_uses_peak_rss_on_large_rows() {
        let with_rss = |kib: u64| {
            let mut a = large_artifact(99136, 509325, 1.0);
            if let JsonValue::Object(pairs) = &mut a {
                for (k, v) in pairs.iter_mut() {
                    if k == "circuits" {
                        if let JsonValue::Array(rows) = v {
                            if let JsonValue::Object(row) = &mut rows[0] {
                                row.push(("peak_rss_kib".into(), JsonValue::UInt(kib)));
                            }
                        }
                    }
                }
            }
            a
        };
        let opts = DiffOptions {
            mem_threshold: Some(0.25),
            ..DiffOptions::default()
        };
        let report = diff_artifacts(&with_rss(1000), &with_rss(2000), &opts).unwrap();
        assert_eq!(report.regressions.len(), 1);
        assert!(
            report.regressions[0].contains("mem: peak 1024000 -> 2048000 bytes"),
            "{:?}",
            report.regressions
        );
        // A zero probe (unavailable) never gates.
        let report = diff_artifacts(&with_rss(0), &with_rss(2000), &opts).unwrap();
        assert!(report.is_clean());
    }

    #[test]
    fn family_mismatch_is_an_error() {
        let t1 = artifact(3, 10, 1.0, false);
        let lg = large_artifact(99136, 509325, 1.0);
        let err = diff_artifacts(&t1, &lg, &DiffOptions::default()).unwrap_err();
        assert!(err.contains("families differ"), "{err}");
    }
}
