//! The versioned `BENCH_table1.json` artifact.
//!
//! Schema `turbomap-bench/table1/v3` — see DESIGN.md for the
//! field-by-field description. Objects render with insertion-ordered
//! keys via [`engine::JsonValue`], so the artifact is byte-deterministic
//! for a given suite result. The `canonical` flag zeroes every timing
//! field (wall seconds, cpu seconds, phase timers, span-duration
//! histograms) and **omits** the memory breakdowns (heap behaviour is
//! scheduling- and allocator-dependent) while keeping the deterministic
//! algorithmic counters and value histograms; two runs that differ only
//! in scheduling (`--jobs 1` vs `--jobs 8`) — or in whether tracing or
//! memory accounting was enabled — produce **byte-identical** canonical
//! artifacts.
//!
//! Version compatibility is strictly additive: `v2` added the optional
//! `histograms` / `job_histograms` objects to `v1`, and `v3` adds the
//! optional `mem_phases` (per algorithm), `job_mem_phases` and `job_mem`
//! objects — per-phase wall + peak-heap + alloc-count breakdowns keyed
//! by the span tracer's phase names, omitted when empty or canonical.
//! Every earlier field keeps its name, type and position, so old
//! consumers read new artifacts by ignoring the new keys and checking
//! the schema prefix `turbomap-bench/table1/`.

use crate::{geomean, Measured, Row};
use engine::hist::{Histogram, Metric, HIST_NAMES, NUM_HISTS};
use engine::mem::{MemStats, MEM_PHASE_NAMES, NUM_MEM_PHASES};
use engine::telemetry::{Telemetry, COUNTER_NAMES, NUM_COUNTERS, PHASE_NAMES};
use engine::{JobOutcome, JobReport, JsonValue};

/// Artifact schema identifier (bump on breaking changes).
pub const SCHEMA: &str = "turbomap-bench/table1/v3";

/// Schema of the large-workload ingestion artifact (`v2` added the
/// optional `peak_rss_kib` field; `v3` added the vectorized verify
/// phase — `verify_lanes`/`verify_cycles` structural fields, the
/// `verify_secs`/`verify_scalar_secs` timings, and the `job_phases`
/// wall breakdown benchdiff attributes regressions to; `v4` adds the
/// optional partitioned-mapping fields of `--partitions` runs —
/// structural `partition_blocks`/`partition_cut_ffs`/`partition_phi`/
/// `partition_luts`, exact-gated by benchdiff, plus the `map_secs`/
/// `partition_block_secs` timings, the derived `partition_speedup`,
/// and a `map` entry in `job_phases`; all omitted on ingestion-only
/// rows, so `v3` consumers read `v4` artifacts unchanged).
pub const LARGE_SCHEMA: &str = "turbomap-bench/large/v4";

fn secs(value: f64, canonical: bool) -> JsonValue {
    JsonValue::Float(if canonical { 0.0 } else { value })
}

fn counters_json(t: &Telemetry) -> JsonValue {
    JsonValue::Object(
        (0..NUM_COUNTERS)
            .map(|i| (COUNTER_NAMES[i].to_string(), JsonValue::UInt(t.counters[i])))
            .collect(),
    )
}

fn phases_json(t: &Telemetry, canonical: bool) -> JsonValue {
    JsonValue::Object(
        PHASE_NAMES
            .iter()
            .enumerate()
            .map(|(i, name)| {
                (
                    name.to_string(),
                    secs(t.phase_nanos[i] as f64 / 1e9, canonical),
                )
            })
            .collect(),
    )
}

fn hist_json(h: &Histogram) -> JsonValue {
    JsonValue::object(vec![
        ("count", JsonValue::UInt(h.count)),
        ("sum", JsonValue::UInt(h.sum)),
        ("p50", JsonValue::UInt(h.quantile(0.5).unwrap_or(0))),
        ("p90", JsonValue::UInt(h.quantile(0.9).unwrap_or(0))),
        ("p99", JsonValue::UInt(h.quantile(0.99).unwrap_or(0))),
        (
            "buckets",
            JsonValue::Array(
                h.nonzero_buckets()
                    .into_iter()
                    .map(|(i, c)| {
                        JsonValue::Array(vec![JsonValue::UInt(i as u64), JsonValue::UInt(c)])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The telemetry's non-empty histograms, or `None` when all are empty
/// (the `histograms` field is optional in the `v2` schema). Canonical
/// artifacts drop `span_nanos` — it is a timing distribution, recorded
/// only when tracing is on, and including it would break the
/// tracing-on/off byte-identity guarantee.
fn hists_json(t: &Telemetry, canonical: bool) -> Option<JsonValue> {
    let pairs: Vec<(String, JsonValue)> = (0..NUM_HISTS)
        .filter(|&i| !(canonical && i == Metric::SpanNanos as usize))
        .filter(|&i| !t.hists[i].is_empty())
        .map(|i| (HIST_NAMES[i].to_string(), hist_json(&t.hists[i])))
        .collect();
    if pairs.is_empty() {
        None
    } else {
        Some(JsonValue::Object(pairs))
    }
}

/// The `v3` per-phase memory breakdown: for each phase that recorded
/// anything, wall seconds inside its scopes plus the heap deltas. `None`
/// when canonical (heap numbers are not scheduling-deterministic) or
/// when accounting never recorded (gate off → field omitted, keeping
/// accounting-on/off artifacts identical in canonical mode).
fn mem_phases_json(mem: &MemStats, canonical: bool) -> Option<JsonValue> {
    if canonical {
        return None;
    }
    let pairs: Vec<(String, JsonValue)> = (0..NUM_MEM_PHASES)
        .filter(|&i| !mem.phases[i].is_empty())
        .map(|i| {
            let p = &mem.phases[i];
            (
                MEM_PHASE_NAMES[i].to_string(),
                JsonValue::object(vec![
                    ("wall_secs", JsonValue::Float(p.wall_nanos as f64 / 1e9)),
                    ("peak_heap_bytes", JsonValue::UInt(p.peak_bytes)),
                    ("allocs", JsonValue::UInt(p.allocs)),
                    ("alloc_bytes", JsonValue::UInt(p.alloc_bytes)),
                ]),
            )
        })
        .collect();
    if pairs.is_empty() {
        None
    } else {
        Some(JsonValue::Object(pairs))
    }
}

/// The `v3` job-level allocation ledger; `None` under the same rules as
/// [`mem_phases_json`].
fn job_mem_json(mem: &MemStats, canonical: bool) -> Option<JsonValue> {
    if canonical || mem.is_empty() {
        return None;
    }
    Some(JsonValue::object(vec![
        ("peak_heap_bytes", JsonValue::UInt(mem.peak_bytes)),
        ("allocs", JsonValue::UInt(mem.allocs)),
        ("frees", JsonValue::UInt(mem.frees)),
        ("alloc_bytes", JsonValue::UInt(mem.alloc_bytes)),
        ("free_bytes", JsonValue::UInt(mem.free_bytes)),
    ]))
}

fn measured_json(m: &Measured, canonical: bool) -> JsonValue {
    let mut pairs = vec![
        ("phi", JsonValue::UInt(m.phi)),
        ("luts", JsonValue::UInt(m.luts as u64)),
        ("ffs", JsonValue::UInt(m.ffs as u64)),
        ("star", JsonValue::Bool(m.star)),
        ("verified", JsonValue::Bool(m.verified)),
        ("cpu_secs", secs(m.cpu, canonical)),
        ("phases", phases_json(&m.telemetry, canonical)),
        ("counters", counters_json(&m.telemetry)),
    ];
    if let Some(h) = hists_json(&m.telemetry, canonical) {
        pairs.push(("histograms", h));
    }
    if let Some(mp) = mem_phases_json(&m.telemetry.mem, canonical) {
        pairs.push(("mem_phases", mp));
    }
    JsonValue::object(pairs)
}

fn row_json(row: &Row, canonical: bool) -> Vec<(&'static str, JsonValue)> {
    vec![
        ("n", JsonValue::UInt(row.n as u64)),
        ("f", JsonValue::UInt(row.f as u64)),
        ("best_valid_phi", JsonValue::UInt(row.best_valid_phi())),
        ("flowmap_frt", measured_json(&row.flowmap_frt, canonical)),
        ("turbomap", measured_json(&row.turbomap, canonical)),
        ("turbomap_frt", measured_json(&row.turbomap_frt, canonical)),
        (
            "frt_iterations",
            JsonValue::Array(
                row.frt_iterations
                    .iter()
                    .map(|&(phi, sweeps)| {
                        JsonValue::object(vec![
                            ("phi", JsonValue::UInt(phi)),
                            ("sweeps", JsonValue::UInt(sweeps as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]
}

fn circuit_json(report: &JobReport<Row>, canonical: bool) -> JsonValue {
    let mut pairs = vec![
        ("name", JsonValue::str(report.name.clone())),
        ("status", JsonValue::str(report.outcome.status())),
    ];
    match &report.outcome {
        JobOutcome::Completed(row) => pairs.extend(row_json(row, canonical)),
        JobOutcome::Failed(e) => pairs.push(("error", JsonValue::str(e.clone()))),
        JobOutcome::Panicked(msg) => pairs.push(("error", JsonValue::str(msg.clone()))),
        JobOutcome::DeadlineExceeded { limit } => {
            pairs.push(("timeout_secs", JsonValue::Float(limit.as_secs_f64())))
        }
    }
    pairs.push(("wall_secs", secs(report.wall.as_secs_f64(), canonical)));
    pairs.push(("job_phases", phases_json(&report.telemetry, canonical)));
    pairs.push(("job_counters", counters_json(&report.telemetry)));
    if let Some(h) = hists_json(&report.telemetry, canonical) {
        pairs.push(("job_histograms", h));
    }
    if let Some(mp) = mem_phases_json(&report.telemetry.mem, canonical) {
        pairs.push(("job_mem_phases", mp));
    }
    if let Some(jm) = job_mem_json(&report.telemetry.mem, canonical) {
        pairs.push(("job_mem", jm));
    }
    JsonValue::object(pairs)
}

fn geomean_json(rows: &[&Row], canonical: bool) -> JsonValue {
    let gm = |f: &dyn Fn(&Row) -> f64| geomean(rows.iter().map(|r| f(r)));
    let alg = |m: &dyn Fn(&Row) -> Measured| {
        let phi = gm(&|r| m(r).phi as f64);
        let luts = gm(&|r| m(r).luts as f64);
        let ffs = gm(&|r| m(r).ffs as f64);
        let cpu = if canonical { 0.0 } else { gm(&|r| m(r).cpu) };
        JsonValue::object(vec![
            ("phi", JsonValue::Float(phi)),
            ("luts", JsonValue::Float(luts)),
            ("ffs", JsonValue::Float(ffs)),
            ("cpu_secs", JsonValue::Float(cpu)),
        ])
    };
    JsonValue::object(vec![
        ("flowmap_frt", alg(&|r| r.flowmap_frt)),
        ("turbomap", alg(&|r| r.turbomap)),
        ("turbomap_frt", alg(&|r| r.turbomap_frt)),
        (
            "best_valid_phi",
            JsonValue::Float(gm(&|r| r.best_valid_phi() as f64)),
        ),
    ])
}

/// Builds the full artifact for one suite run.
///
/// `canonical` zeroes every timing field so the rendering depends only
/// on the algorithmic results (the `--jobs`-independence guarantee).
pub fn table1_json(
    reports: &[JobReport<Row>],
    k: usize,
    verify_vectors: usize,
    canonical: bool,
) -> JsonValue {
    let completed: Vec<&Row> = reports
        .iter()
        .filter_map(|r| r.outcome.completed())
        .collect();
    let stars = completed.iter().filter(|r| r.turbomap.star).count();
    let failures: Vec<JsonValue> = reports
        .iter()
        .filter(|r| !r.outcome.is_completed())
        .map(|r| {
            JsonValue::object(vec![
                ("name", JsonValue::str(r.name.clone())),
                ("status", JsonValue::str(r.outcome.status())),
            ])
        })
        .collect();
    JsonValue::object(vec![
        ("schema", JsonValue::str(SCHEMA)),
        ("k", JsonValue::UInt(k as u64)),
        ("verify_vectors", JsonValue::UInt(verify_vectors as u64)),
        ("canonical", JsonValue::Bool(canonical)),
        (
            "circuits",
            JsonValue::Array(reports.iter().map(|r| circuit_json(r, canonical)).collect()),
        ),
        (
            "summary",
            JsonValue::object(vec![
                ("total", JsonValue::UInt(reports.len() as u64)),
                ("completed", JsonValue::UInt(completed.len() as u64)),
                ("turbomap_stars", JsonValue::UInt(stars as u64)),
                ("failures", JsonValue::Array(failures)),
                ("geomean", geomean_json(&completed, canonical)),
            ]),
        ),
    ])
}

/// Builds the [`LARGE_SCHEMA`] ingestion artifact.
///
/// The structural fields (`file_bytes`, `models`, `gates`, `ffs`,
/// `pis`, `pos`) are deterministic per preset; `benchdiff` compares
/// them exactly, so *any* drift gates. `canonical` zeroes the timing
/// fields (`parse_secs`, `wall_secs`) like the Table-1 artifact.
pub fn large_json(rows: &[crate::large::IngestRow], canonical: bool) -> JsonValue {
    JsonValue::object(vec![
        ("schema", JsonValue::str(LARGE_SCHEMA)),
        ("canonical", JsonValue::Bool(canonical)),
        (
            "circuits",
            JsonValue::Array(
                rows.iter()
                    .map(|r| {
                        let map_secs = r.partition.as_ref().map_or(0.0, |p| p.map_secs);
                        let mut phases = vec![
                            ("parse", secs(r.parse_secs, canonical)),
                            ("flatten", secs(r.total_secs - r.parse_secs, canonical)),
                            ("verify", secs(r.verify_secs, canonical)),
                        ];
                        if r.partition.is_some() {
                            phases.push(("map", secs(map_secs, canonical)));
                        }
                        let mut pairs = vec![
                            ("name", JsonValue::str(r.name.clone())),
                            ("status", JsonValue::str("ok")),
                            ("file_bytes", JsonValue::UInt(r.file_bytes)),
                            ("models", JsonValue::UInt(r.models as u64)),
                            ("gates", JsonValue::UInt(r.gates as u64)),
                            ("ffs", JsonValue::UInt(r.ffs as u64)),
                            ("pis", JsonValue::UInt(r.pis as u64)),
                            ("pos", JsonValue::UInt(r.pos as u64)),
                            ("verify_lanes", JsonValue::UInt(r.verify_lanes as u64)),
                            ("verify_cycles", JsonValue::UInt(r.verify_cycles as u64)),
                            ("parse_secs", secs(r.parse_secs, canonical)),
                            ("verify_secs", secs(r.verify_secs, canonical)),
                            ("verify_scalar_secs", secs(r.verify_scalar_secs, canonical)),
                            (
                                "wall_secs",
                                secs(r.total_secs + r.verify_secs + map_secs, canonical),
                            ),
                            ("job_phases", JsonValue::object(phases)),
                            (
                                "peak_rss_kib",
                                JsonValue::UInt(if canonical { 0 } else { r.peak_rss_kib }),
                            ),
                        ];
                        if let Some(p) = &r.partition {
                            pairs.extend([
                                ("partition_blocks", JsonValue::UInt(p.blocks as u64)),
                                ("partition_cut_ffs", JsonValue::UInt(p.cut_ffs)),
                                ("partition_phi", JsonValue::UInt(p.phi)),
                                ("partition_luts", JsonValue::UInt(p.luts as u64)),
                                ("map_secs", secs(p.map_secs, canonical)),
                                ("partition_block_secs", secs(p.block_secs, canonical)),
                                ("partition_speedup", secs(p.speedup(), canonical)),
                            ]);
                        }
                        JsonValue::object(pairs)
                    })
                    .collect(),
            ),
        ),
        (
            "summary",
            JsonValue::object(vec![
                ("total", JsonValue::UInt(rows.len() as u64)),
                (
                    "gates",
                    JsonValue::UInt(rows.iter().map(|r| r.gates as u64).sum()),
                ),
                (
                    "ffs",
                    JsonValue::UInt(rows.iter().map(|r| r.ffs as u64).sum()),
                ),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::telemetry::Telemetry;
    use std::time::Duration;

    fn fake_measured(phi: u64) -> Measured {
        let mut t = Telemetry::default();
        t.counters[0] = 42;
        t.phase_nanos[0] = 1_500_000_000;
        for v in [2u64, 3, 3, 5] {
            t.hists[Metric::CutSize as usize].record(v);
        }
        // A timing histogram that canonical artifacts must drop.
        t.hists[Metric::SpanNanos as usize].record(1_500);
        // Memory accounting that canonical artifacts must omit.
        t.mem.allocs = 11;
        t.mem.alloc_bytes = 2_222;
        t.mem.peak_bytes = 1_111;
        t.mem.phases[engine::mem::MemPhase::LabelSweep as usize] = engine::mem::MemPhaseStats {
            wall_nanos: 700_000_000,
            allocs: 9,
            frees: 8,
            alloc_bytes: 2_000,
            peak_bytes: 999,
        };
        Measured {
            phi,
            luts: 10,
            ffs: 4,
            cpu: 1.5,
            star: false,
            verified: true,
            telemetry: t,
        }
    }

    fn fake_report(name: &str) -> JobReport<Row> {
        let row = Row {
            name: name.into(),
            n: 20,
            f: 5,
            flowmap_frt: fake_measured(7),
            turbomap: fake_measured(5),
            turbomap_frt: fake_measured(6),
            frt_iterations: vec![(6, 3)],
        };
        JobReport {
            name: name.into(),
            outcome: JobOutcome::Completed(row),
            wall: Duration::from_millis(1234),
            telemetry: Telemetry::default(),
            trace: None,
        }
    }

    #[test]
    fn canonical_artifact_has_no_timing() {
        let reports = vec![fake_report("a")];
        let text = table1_json(&reports, 5, 3008, true).render_pretty();
        assert!(text.contains("\"schema\": \"turbomap-bench/table1/v3\""));
        assert!(text.contains("\"cpu_secs\": 0.0"));
        assert!(!text.contains("1.5"), "timing leaked: {text}");
        // Counters survive canonicalisation.
        assert!(text.contains("\"flow_augmentations\": 42"));
        // Value histograms survive; the span-duration histogram does not.
        assert!(text.contains("\"cut_size\""));
        assert!(!text.contains("\"span_nanos\""), "timing hist leaked");
        // Memory breakdowns are omitted wholesale in canonical mode, so
        // accounting-on and accounting-off runs stay byte-identical.
        assert!(!text.contains("mem_phases"), "mem leaked: {text}");
        assert!(!text.contains("job_mem"), "mem leaked: {text}");
    }

    #[test]
    fn non_canonical_artifact_carries_mem_breakdowns() {
        let mut reports = vec![fake_report("a")];
        reports[0].telemetry.mem = fake_measured(5).telemetry.mem;
        let text = table1_json(&reports, 5, 3008, false).render();
        // Per-algorithm breakdown keyed by the tracer's phase names.
        assert!(text.contains(
            "\"mem_phases\":{\"frtcheck_sweep\":{\"wall_secs\":0.7,\
             \"peak_heap_bytes\":999,\"allocs\":9,\"alloc_bytes\":2000}}"
        ));
        // Job-level breakdown plus the allocation ledger.
        assert!(text.contains("\"job_mem_phases\""));
        assert!(text.contains(
            "\"job_mem\":{\"peak_heap_bytes\":1111,\"allocs\":11,\"frees\":0,\
             \"alloc_bytes\":2222,\"free_bytes\":0}"
        ));
    }

    #[test]
    fn histograms_render_quantiles_and_buckets() {
        let reports = vec![fake_report("a")];
        let text = table1_json(&reports, 5, 3008, false).render();
        // Samples 2,3,3,5 → count 4, sum 13; p50 in bucket [2,3], p99 in
        // bucket [4,7]; buckets: index 2 ×3, index 3 ×1.
        assert!(text.contains(
            "\"cut_size\":{\"count\":4,\"sum\":13,\"p50\":3,\"p90\":7,\"p99\":7,\
             \"buckets\":[[2,3],[3,1]]}"
        ));
        // Non-canonical artifacts keep the span-duration histogram.
        assert!(text.contains("\"span_nanos\""));
        // Job-level telemetry is all-empty → optional field omitted.
        assert!(!text.contains("job_histograms"));
    }

    #[test]
    fn failures_are_listed_and_rows_kept() {
        let mut reports = vec![fake_report("a"), fake_report("b")];
        reports[1].outcome = JobOutcome::Panicked("boom".into());
        let text = table1_json(&reports, 5, 3008, true).render();
        assert!(text.contains("\"status\":\"panicked\""));
        assert!(text.contains("\"error\":\"boom\""));
        assert!(text.contains("\"completed\":1"));
        assert!(text.contains("\"total\":2"));
    }

    #[test]
    fn large_artifact_carries_partition_fields() {
        let row = crate::large::IngestRow {
            name: "hier".into(),
            file_bytes: 10,
            models: 3,
            gates: 100,
            ffs: 20,
            pis: 4,
            pos: 4,
            parse_secs: 0.1,
            total_secs: 0.2,
            verify_lanes: 64,
            verify_cycles: 16,
            verify_secs: 0.05,
            verify_scalar_secs: 0.5,
            peak_rss_kib: 1000,
            partition: Some(crate::large::PartitionMeasurement {
                blocks: 4,
                cut_ffs: 12,
                phi: 9,
                luts: 50,
                map_secs: 2.0,
                block_secs: 6.0,
            }),
        };
        let text = large_json(std::slice::from_ref(&row), false).render();
        assert!(text.contains("\"schema\":\"turbomap-bench/large/v4\""));
        assert!(text.contains("\"partition_blocks\":4"));
        assert!(text.contains("\"partition_cut_ffs\":12"));
        assert!(text.contains("\"partition_speedup\":3.0"));
        assert!(text.contains("\"map\":2.0"), "{text}");
        // Canonical zeroes the partition timings, keeps the structure.
        let text = large_json(std::slice::from_ref(&row), true).render();
        assert!(text.contains("\"partition_phi\":9"));
        assert!(text.contains("\"partition_speedup\":0.0"));
        assert!(text.contains("\"map_secs\":0.0"));
        // Ingestion-only rows omit every partition field (v3 shape).
        let plain = crate::large::IngestRow {
            partition: None,
            ..row
        };
        let text = large_json(&[plain], false).render();
        assert!(!text.contains("partition_"), "{text}");
        assert!(!text.contains("\"map\""), "{text}");
    }

    #[test]
    fn artifact_is_deterministic() {
        let reports = vec![fake_report("a"), fake_report("b")];
        let one = table1_json(&reports, 5, 3008, false).render_pretty();
        let two = table1_json(&reports, 5, 3008, false).render_pretty();
        assert_eq!(one, two);
    }
}
