//! `benchdiff` — compare two `BENCH_table1.json` artifacts and gate on
//! regressions.
//!
//! Usage:
//!   benchdiff <baseline.json> <candidate.json>
//!             [--wall-threshold-pct P] [--mem-threshold-pct M]
//!             [--verify-speedup X] [--phi-gap N] [--no-quality-gate]
//!
//! Prints a byte-deterministic per-circuit delta report (Φ, LUTs, wall
//! time, peak memory, histogram p50/p90/p99) to stdout. Exit status: 0
//! when the candidate passes, 1 on regressions (quality changes, wall
//! time more than P percent over baseline — default 25 — or, with
//! `--mem-threshold-pct`, per-job peak memory more than M percent over
//! baseline), 2 on usage or parse errors. When a wall or memory gate
//! trips, the report names the phase whose wall/peak grew the most
//! (from the schema-v3 `mem_phases` breakdowns). Wall and memory
//! gating are skipped automatically when either artifact is canonical
//! (timing zeroed, memory omitted by design).
//!
//! `--verify-speedup X` gates `large/v3` rows on the verify phase's
//! vectorization speedup: `verify_scalar_secs / verify_secs` must be at
//! least X on every row. The ratio compares the two simulation engines
//! within one run, so only the *candidate* needs real timings — the
//! checked-in canonical baseline works fine as the other side. Skipped
//! (with a note) when the candidate itself is canonical.
//!
//! `--phi-gap N` compares a *partitioned* candidate against the
//! committed monolithic baseline: per-circuit Φ and LUT deltas are
//! still reported, but Φ gates only when it exceeds the baseline by
//! more than N, and LUT growth (expected from duplicated seam logic)
//! never gates. `--phi-gap 0` demands Φ parity while keeping LUTs
//! informational.

use bench::diff::{diff_artifacts, render_report, DiffOptions};
use engine::log;
use engine::JsonValue;

fn usage() -> ! {
    eprintln!(
        "usage: benchdiff <baseline.json> <candidate.json> \
         [--wall-threshold-pct P] [--mem-threshold-pct M] \
         [--verify-speedup X] [--phi-gap N] [--no-quality-gate]"
    );
    std::process::exit(2);
}

fn load(path: &str) -> JsonValue {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            log::error(
                "benchdiff",
                "cannot read artifact",
                &[
                    ("path", JsonValue::str(path)),
                    ("error", JsonValue::str(e.to_string())),
                ],
            );
            std::process::exit(2);
        }
    };
    match JsonValue::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            log::error(
                "benchdiff",
                "artifact is not valid JSON",
                &[("path", JsonValue::str(path)), ("error", JsonValue::str(e))],
            );
            std::process::exit(2);
        }
    }
}

fn main() {
    log::init(false);
    let mut opts = DiffOptions::default();
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--wall-threshold-pct" => {
                let pct: f64 = match args.next().and_then(|v| v.parse().ok()) {
                    Some(p) => p,
                    None => usage(),
                };
                opts.wall_threshold = pct / 100.0;
            }
            "--mem-threshold-pct" => {
                let pct: f64 = match args.next().and_then(|v| v.parse().ok()) {
                    Some(p) => p,
                    None => usage(),
                };
                opts.mem_threshold = Some(pct / 100.0);
            }
            "--verify-speedup" => {
                let x: f64 = match args.next().and_then(|v| v.parse().ok()) {
                    Some(x) if x > 0.0 => x,
                    _ => usage(),
                };
                opts.verify_speedup = Some(x);
            }
            "--phi-gap" => {
                let n: u64 = match args.next().and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => usage(),
                };
                opts.phi_gap = Some(n);
            }
            "--no-quality-gate" => opts.quality_gate = false,
            "-h" | "--help" => usage(),
            other if !other.starts_with('-') => paths.push(other.to_string()),
            _ => usage(),
        }
    }
    if paths.len() != 2 {
        usage();
    }
    let base = load(&paths[0]);
    let cand = load(&paths[1]);
    let report = match diff_artifacts(&base, &cand, &opts) {
        Ok(r) => r,
        Err(e) => {
            log::error("benchdiff", "diff failed", &[("error", JsonValue::str(e))]);
            std::process::exit(2);
        }
    };
    print!("{}", render_report(&report));
    if !report.is_clean() {
        std::process::exit(1);
    }
}
