//! Regenerates Table 1 of the paper: FlowMap-frt vs TurboMap vs
//! TurboMap-frt on the 18-circuit suite, K = 5.
//!
//! Usage:
//!   table1 [--max-gates N] [--k K] [--no-verify] [--stats]
//!          [--jobs N] [--sweep-workers N] [--no-warm-start]
//!          [--timeout-secs S] [--json PATH] [--canonical]
//!          [--trace-dir DIR] [--report-dir DIR] [--suite table1|large]
//!          [--partitions K|auto]
//!
//! `--partitions` swaps the TurboMap-frt leg for the
//! partition-and-conquer mapper (`auto` picks one block per ~100k
//! gates): on the Table-1 suite the partitioned numbers land in the
//! `turbomap_frt` artifact slot, so `benchdiff --phi-gap N` can gate
//! the partitioned artifact against the committed monolithic baseline;
//! on `--suite large` every preset is additionally *mapped* (not just
//! ingested), with `--jobs` as the block-level worker count, and the
//! artifact gains the `large/v4` partition fields including the
//! measured multi-block parallel speedup.
//!
//! `--suite large` runs the large-workload *ingestion* suite instead:
//! each `workloads::large` preset is generated to a temp dir and
//! ingested through the streaming BLIF front-end; `--json` then writes
//! the `turbomap-bench/large/v3` artifact (also honouring
//! `--canonical` and `--max-gates`, which caps the preset's flattened
//! gate count).
//!
//! Circuits run as isolated jobs on the `engine` batch runner: `--jobs`
//! picks the worker count (results are identical and identically ordered
//! for any value), `--timeout-secs` arms a per-circuit soft deadline, and
//! `--json` writes the versioned `turbomap-bench/table1/v3` artifact
//! (`--canonical` zeroes its timing fields and omits its heap-accounting
//! fields so reruns are byte-identical, even with tracing or memory
//! accounting toggled). `--trace-dir` enables span tracing and
//! writes one Chrome-trace JSON per circuit (`DIR/<name>.trace.json`,
//! loadable in Perfetto / `chrome://tracing`). `--report-dir` runs a
//! post-suite certificate pass: every circuit is re-mapped through
//! `report::explain`, the `turbomap-report/v1` document is replayed
//! through the independent checker, and `DIR/<name>.report.json` is
//! written — the process exits nonzero if any witness fails to verify.
//! The pass runs after the measured rows, so the canonical artifact is
//! byte-identical with or without it.
//! A panicking or deadline-exceeded circuit is reported and skipped; the
//! remaining rows still print and the process exits nonzero naming it.
//!
//! `--stats` additionally prints the FRTcheck iteration counts per probed
//! clock period (the paper's §3.2 claim of 5–15 iterations).
//!
//! `--sweep-workers` sets the *intra*-job parallelism of the
//! TurboMap-frt label sweeps (1 = serial, the default for artifact
//! comparability; 0 = auto); any value yields the byte-identical
//! canonical artifact. `--no-warm-start` disables probe warm-starting:
//! mapped quality (Φ/LUT/FF) is unchanged but per-probe sweep counts
//! and the `frt_sweeps`/`sweeps_saved` counters shift.

use bench::batch::{failures, run_table1_suite, SuiteConfig};
use bench::{artifact, geomean, Row};
use engine::{log, JsonValue};
use std::time::Duration;

/// Heap accounting for the schema-v3 `mem_phases` / `job_mem`
/// breakdowns: the counting wrapper always delegates to the system
/// allocator, and counting itself is off until `mem::set_enabled`.
#[global_allocator]
static ALLOC: engine::mem::CountingAlloc = engine::mem::CountingAlloc::new();

/// The `--suite large` path: ingest every large preset (within the
/// gate cap) and optionally write the `turbomap-bench/large/v3`
/// artifact.
fn run_large_suite_main(cfg: &SuiteConfig, json_path: Option<&str>, canonical: bool) {
    let dir = std::env::temp_dir().join("tmfrt_large_suite");
    println!("Large-workload ingestion suite (streaming BLIF front-end)");
    println!(
        "{:<10} {:>12} {:>7} {:>9} {:>7} {:>5} {:>5} {:>9} {:>9} {:>9} {:>9} {:>8}",
        "preset",
        "file_bytes",
        "models",
        "gates",
        "FFs",
        "PIs",
        "POs",
        "parse_s",
        "total_s",
        "verify_s",
        "scalar_s",
        "speedup"
    );
    let rows = match bench::large::run_large_suite_partitioned(
        cfg.max_gates,
        &dir,
        cfg.partitions,
        cfg.jobs,
        cfg.k,
    ) {
        Ok(rows) => rows,
        Err(e) => {
            log::error(
                "table1",
                "large suite failed",
                &[("error", JsonValue::str(e))],
            );
            std::process::exit(1);
        }
    };
    for r in &rows {
        println!(
            "{:<10} {:>12} {:>7} {:>9} {:>7} {:>5} {:>5} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>7.1}x",
            r.name,
            r.file_bytes,
            r.models,
            r.gates,
            r.ffs,
            r.pis,
            r.pos,
            r.parse_secs,
            r.total_secs,
            r.verify_secs,
            r.verify_scalar_secs,
            r.verify_scalar_secs / r.verify_secs.max(1e-12)
        );
        if let Some(p) = &r.partition {
            println!(
                "           partitioned map: {} blocks, {} cut FFs -> Φ {}, {} LUTs \
                 in {:.1}s ({:.2}x multi-block speedup, {:.1}s serial)",
                p.blocks,
                p.cut_ffs,
                p.phi,
                p.luts,
                p.map_secs,
                p.speedup(),
                p.block_secs,
            );
        }
    }
    if let Some(path) = json_path {
        let doc = artifact::large_json(&rows, canonical);
        if let Err(e) = std::fs::write(path, doc.render_pretty()) {
            log::error(
                "table1",
                "cannot write artifact",
                &[
                    ("path", JsonValue::str(path.to_string())),
                    ("error", JsonValue::str(e.to_string())),
                ],
            );
            std::process::exit(1);
        }
        println!("wrote {path} ({})", artifact::LARGE_SCHEMA);
    }
    if rows.is_empty() {
        println!("no presets within the gate cap");
        std::process::exit(1);
    }
}

fn main() {
    log::init(false);
    engine::mem::set_enabled(true);
    let mut cfg = SuiteConfig::default();
    let mut stats = false;
    let mut json_path: Option<String> = None;
    let mut canonical = false;
    let mut trace_dir: Option<String> = None;
    let mut report_dir: Option<String> = None;
    let mut suite = String::from("table1");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--suite" => {
                suite = args.next().expect("--suite table1|large");
            }
            "--max-gates" => {
                cfg.max_gates = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--max-gates N"),
                );
            }
            "--k" => {
                cfg.k = args.next().and_then(|v| v.parse().ok()).expect("--k K");
            }
            "--no-verify" => cfg.verify = false,
            "--stats" => stats = true,
            "--jobs" => {
                cfg.jobs = args.next().and_then(|v| v.parse().ok()).expect("--jobs N");
            }
            "--sweep-workers" => {
                cfg.sweep_workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--sweep-workers N (0 = auto)");
            }
            "--no-warm-start" => cfg.warm_start = false,
            "--partitions" => {
                let v = args.next().expect("--partitions K|auto");
                cfg.partitions = Some(if v == "auto" {
                    0
                } else {
                    match v.parse::<usize>() {
                        Ok(n) if n >= 1 => n,
                        _ => {
                            log::error(
                                "table1",
                                "--partitions needs a count >= 1 or `auto`",
                                &[("value", JsonValue::str(v))],
                            );
                            std::process::exit(2);
                        }
                    }
                });
            }
            "--timeout-secs" => {
                let s: u64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--timeout-secs S");
                cfg.timeout = Some(Duration::from_secs(s));
            }
            "--json" => {
                json_path = Some(args.next().expect("--json PATH"));
            }
            "--canonical" => canonical = true,
            "--trace-dir" => {
                trace_dir = Some(args.next().expect("--trace-dir DIR"));
            }
            "--report-dir" => {
                report_dir = Some(args.next().expect("--report-dir DIR"));
            }
            other => {
                log::error(
                    "table1",
                    "unknown flag",
                    &[("flag", JsonValue::str(other.to_string()))],
                );
                std::process::exit(2);
            }
        }
    }

    match suite.as_str() {
        "table1" => {}
        "large" => {
            run_large_suite_main(&cfg, json_path.as_deref(), canonical);
            return;
        }
        other => {
            log::error(
                "table1",
                "unknown suite",
                &[("suite", JsonValue::str(other.to_string()))],
            );
            std::process::exit(2);
        }
    }

    println!(
        "TurboMap-frt reproduction — Table 1 (K = {}, {} random verification vectors, {} worker{})",
        cfg.k,
        if cfg.verify { bench::VERIFY_VECTORS } else { 0 },
        cfg.jobs.max(1),
        if cfg.jobs.max(1) == 1 { "" } else { "s" },
    );
    if let Some(p) = cfg.partitions {
        if p == 0 {
            println!("TurboMap-frt column: partition-and-conquer (auto block count)");
        } else {
            println!("TurboMap-frt column: partition-and-conquer ({p} blocks)");
        }
    }
    println!(
        "{:<10} {:>6}{:>6} | {:^25} | {:^27} | {:>5} | {:^25}",
        "", "", "", "FlowMap-frt", "TurboMap", "Best", "TurboMap-frt"
    );
    println!(
        "{:<10} {:>6}{:>6} | {:>4}{:>6}{:>6}{:>9} | {:>6}{:>6}{:>6}{:>9} | {:>5} | {:>4}{:>6}{:>6}{:>9}",
        "circuit", "N", "F", "Φ", "LUT", "FF", "CPU", "Φ", "LUT", "FF", "CPU", "", "Φ", "LUT", "FF", "CPU"
    );

    if let Some(dir) = &trace_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            log::error(
                "table1",
                "cannot create trace dir",
                &[
                    ("path", JsonValue::str(dir.clone())),
                    ("error", JsonValue::str(e.to_string())),
                ],
            );
            std::process::exit(1);
        }
        engine::trace::set_enabled(true);
    }

    let reports = run_table1_suite(&cfg);

    if let Some(dir) = &trace_dir {
        for report in &reports {
            let Some(buffer) = &report.trace else {
                continue;
            };
            let path = format!("{dir}/{}.trace.json", report.name);
            let doc = engine::trace::chrome_trace(buffer, &report.name);
            if let Err(e) = std::fs::write(&path, doc.render_pretty()) {
                log::error(
                    "table1",
                    "cannot write trace",
                    &[
                        ("path", JsonValue::str(path.clone())),
                        ("error", JsonValue::str(e.to_string())),
                    ],
                );
                std::process::exit(1);
            }
        }
        log::info(
            "table1",
            "wrote traces",
            &[
                ("dir", JsonValue::str(dir.clone())),
                ("count", JsonValue::UInt(reports.len() as u64)),
            ],
        );
    }

    let mut rows: Vec<&Row> = Vec::new();
    for report in &reports {
        let Some(row) = report.outcome.completed() else {
            let detail = match &report.outcome {
                engine::JobOutcome::Failed(e) => format!("error: {e}"),
                engine::JobOutcome::Panicked(msg) => format!("panic: {msg}"),
                engine::JobOutcome::DeadlineExceeded { limit } => {
                    format!("deadline exceeded ({}s)", limit.as_secs_f64())
                }
                engine::JobOutcome::Completed(_) => unreachable!(),
            };
            println!(
                "{:<10} {:>12} | [{}] {detail}",
                report.name,
                "",
                report.outcome.status()
            );
            continue;
        };
        let tm_star = if row.turbomap.star { "*" } else { " " };
        println!(
            "{:<10} {:>6}{:>6} | {:>4}{:>6}{:>6}{:>9.2} | {}{:>5}{:>6}{:>6}{:>9.2} | {:>5} | {:>4}{:>6}{:>6}{:>9.2}{}",
            row.name,
            row.n,
            row.f,
            row.flowmap_frt.phi,
            row.flowmap_frt.luts,
            row.flowmap_frt.ffs,
            row.flowmap_frt.cpu,
            tm_star,
            row.turbomap.phi,
            row.turbomap.luts,
            row.turbomap.ffs,
            row.turbomap.cpu,
            row.best_valid_phi(),
            row.turbomap_frt.phi,
            row.turbomap_frt.luts,
            row.turbomap_frt.ffs,
            row.turbomap_frt.cpu,
            if cfg.verify {
                let ok = row.flowmap_frt.verified
                    && row.turbomap_frt.verified
                    && (row.turbomap.verified || row.turbomap.star);
                if ok {
                    "  [verified]"
                } else {
                    "  [VERIFY FAILED]"
                }
            } else {
                ""
            },
        );
        if stats {
            let iters: Vec<String> = row
                .frt_iterations
                .iter()
                .map(|(phi, it)| format!("Φ={phi}:{it}"))
                .collect();
            println!("           FRTcheck sweeps: {}", iters.join(" "));
        }
        let capped = row
            .turbomap_frt
            .telemetry
            .counter(engine::telemetry::Counter::FrtCapped);
        if capped > 0 {
            println!(
                "           WARNING: weight horizon capped frt(v) on {capped} gate{} — \
                 TurboMap-frt may be suboptimal here",
                if capped == 1 { "" } else { "s" }
            );
        }
        rows.push(row);
    }

    if let Some(path) = &json_path {
        let doc = artifact::table1_json(&reports, cfg.k, bench::VERIFY_VECTORS, canonical);
        if let Err(e) = std::fs::write(path, doc.render_pretty()) {
            log::error(
                "table1",
                "cannot write artifact",
                &[
                    ("path", JsonValue::str(path.clone())),
                    ("error", JsonValue::str(e.to_string())),
                ],
            );
            std::process::exit(1);
        }
        println!("wrote {path} ({})", artifact::SCHEMA);
    }

    if rows.is_empty() {
        println!("no circuits completed");
        std::process::exit(1);
    }

    // The certificate pass runs on fresh mappings *after* the measured
    // rows and the artifact, so it cannot perturb either.
    if let Some(dir) = &report_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            log::error(
                "table1",
                "cannot create report dir",
                &[
                    ("path", JsonValue::str(dir.clone())),
                    ("error", JsonValue::str(e.to_string())),
                ],
            );
            std::process::exit(1);
        }
        let mut unverified = Vec::new();
        for (name, outcome) in bench::batch::explain_suite(&cfg) {
            match outcome {
                Ok(doc) => {
                    let path = format!("{dir}/{name}.report.json");
                    if let Err(e) = std::fs::write(&path, doc) {
                        log::error(
                            "table1",
                            "cannot write report",
                            &[
                                ("path", JsonValue::str(path.clone())),
                                ("error", JsonValue::str(e.to_string())),
                            ],
                        );
                        std::process::exit(1);
                    }
                }
                Err(e) => {
                    println!("report: {name}: CERTIFICATE FAILED — {e}");
                    unverified.push(name);
                }
            }
        }
        if unverified.is_empty() {
            println!("report: all certificates verified ({dir}/<name>.report.json)");
        } else {
            log::error(
                "table1",
                "certificates failed to verify",
                &[("names", JsonValue::str(unverified.join(", ")))],
            );
            std::process::exit(1);
        }
    }

    // Geometric means (over completed rows) and the paper's % comparison.
    let gm = |f: &dyn Fn(&Row) -> f64| geomean(rows.iter().map(|r| f(r)));
    let fm_phi = gm(&|r| r.flowmap_frt.phi as f64);
    let tm_phi = gm(&|r| r.turbomap.phi as f64);
    let tf_phi = gm(&|r| r.turbomap_frt.phi as f64);
    let best_phi = gm(&|r| r.best_valid_phi() as f64);
    let fm_lut = gm(&|r| r.flowmap_frt.luts as f64);
    let tm_lut = gm(&|r| r.turbomap.luts as f64);
    let tf_lut = gm(&|r| r.turbomap_frt.luts as f64);
    let fm_ff = gm(&|r| r.flowmap_frt.ffs as f64);
    let tm_ff = gm(&|r| r.turbomap.ffs as f64);
    let tf_ff = gm(&|r| r.turbomap_frt.ffs as f64);
    let fm_cpu = gm(&|r| r.flowmap_frt.cpu.max(1e-4));
    let tm_cpu = gm(&|r| r.turbomap.cpu.max(1e-4));
    let tf_cpu = gm(&|r| r.turbomap_frt.cpu.max(1e-4));
    let stars = rows.iter().filter(|r| r.turbomap.star).count();

    println!();
    println!(
        "geomean    {:>12} | {:>4.1}{:>6.0}{:>6.1}{:>9.4} | {:>6.1}{:>6.0}{:>6.1}{:>9.4} | {:>5.1} | {:>4.1}{:>6.0}{:>6.1}{:>9.4}",
        "", fm_phi, fm_lut, fm_ff, fm_cpu, tm_phi, tm_lut, tm_ff, tm_cpu, best_phi, tf_phi, tf_lut, tf_ff, tf_cpu
    );
    let pct = |x: f64, base: f64| 100.0 * (x - base) / base;
    println!(
        "vs TurboMap-frt: FlowMap-frt Φ {:+.1}%  LUT {:+.1}%  FF {:+.1}%   |   TurboMap Φ {:+.1}%  LUT {:+.1}%  FF {:+.1}%   |   Best-valid Φ {:+.1}%",
        pct(fm_phi, tf_phi),
        pct(fm_lut, tf_lut),
        pct(fm_ff, tf_ff),
        pct(tm_phi, tf_phi),
        pct(tm_lut, tf_lut),
        pct(tm_ff, tf_ff),
        pct(best_phi, tf_phi),
    );
    println!(
        "TurboMap initial-state failures (*): {stars}/{} circuits   (paper: 10/18)",
        rows.len()
    );
    println!("paper geomeans for reference: Φ 7.0 / 5.6 / 5.8, %Φ +20.2 / -2.8 / +8.6 (best)");

    let failed = failures(&reports);
    if !failed.is_empty() {
        let names: Vec<String> = failed
            .iter()
            .map(|(name, status)| format!("{name} ({status})"))
            .collect();
        log::error(
            "table1",
            "circuits did not complete",
            &[
                ("failed", JsonValue::UInt(failed.len() as u64)),
                ("total", JsonValue::UInt(reports.len() as u64)),
                ("names", JsonValue::str(names.join(", "))),
            ],
        );
        std::process::exit(1);
    }
}
