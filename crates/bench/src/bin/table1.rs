//! Regenerates Table 1 of the paper: FlowMap-frt vs TurboMap vs
//! TurboMap-frt on the 18-circuit suite, K = 5.
//!
//! Usage:
//!   table1 [--max-gates N] [--k K] [--no-verify] [--stats]
//!
//! `--stats` additionally prints the FRTcheck iteration counts per probed
//! clock period (the paper's §3.2 claim of 5–15 iterations).

use bench::{geomean, run_row, Row};

fn main() {
    let mut max_gates = usize::MAX;
    let mut k = 5usize;
    let mut verify = true;
    let mut stats = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--max-gates" => {
                max_gates = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-gates N");
            }
            "--k" => {
                k = args.next().and_then(|v| v.parse().ok()).expect("--k K");
            }
            "--no-verify" => verify = false,
            "--stats" => stats = true,
            other => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
    }

    println!(
        "TurboMap-frt reproduction — Table 1 (K = {k}, {} random verification vectors)",
        if verify { bench::VERIFY_VECTORS } else { 0 }
    );
    println!(
        "{:<10} {:>6}{:>6} | {:^25} | {:^27} | {:>5} | {:^25}",
        "", "", "", "FlowMap-frt", "TurboMap", "Best", "TurboMap-frt"
    );
    println!(
        "{:<10} {:>6}{:>6} | {:>4}{:>6}{:>6}{:>9} | {:>6}{:>6}{:>6}{:>9} | {:>5} | {:>4}{:>6}{:>6}{:>9}",
        "circuit", "N", "F", "Φ", "LUT", "FF", "CPU", "Φ", "LUT", "FF", "CPU", "", "Φ", "LUT", "FF", "CPU"
    );

    let mut rows: Vec<Row> = Vec::new();
    for (p, c) in workloads::table1_suite() {
        if c.num_gates() > max_gates {
            continue;
        }
        let row = run_row(p.name, &c, k, verify);
        let tm_star = if row.turbomap.star { "*" } else { " " };
        println!(
            "{:<10} {:>6}{:>6} | {:>4}{:>6}{:>6}{:>9.2} | {}{:>5}{:>6}{:>6}{:>9.2} | {:>5} | {:>4}{:>6}{:>6}{:>9.2}{}",
            row.name,
            row.n,
            row.f,
            row.flowmap_frt.phi,
            row.flowmap_frt.luts,
            row.flowmap_frt.ffs,
            row.flowmap_frt.cpu,
            tm_star,
            row.turbomap.phi,
            row.turbomap.luts,
            row.turbomap.ffs,
            row.turbomap.cpu,
            row.best_valid_phi(),
            row.turbomap_frt.phi,
            row.turbomap_frt.luts,
            row.turbomap_frt.ffs,
            row.turbomap_frt.cpu,
            if verify {
                let ok = row.flowmap_frt.verified
                    && row.turbomap_frt.verified
                    && (row.turbomap.verified || row.turbomap.star);
                if ok {
                    "  [verified]"
                } else {
                    "  [VERIFY FAILED]"
                }
            } else {
                ""
            },
        );
        if stats {
            let iters: Vec<String> = row
                .frt_iterations
                .iter()
                .map(|(phi, it)| format!("Φ={phi}:{it}"))
                .collect();
            println!("           FRTcheck sweeps: {}", iters.join(" "));
        }
        rows.push(row);
    }
    if rows.is_empty() {
        println!("no circuits within --max-gates bound");
        return;
    }

    // Geometric means and the paper's % comparison rows.
    let gm = |f: &dyn Fn(&Row) -> f64| geomean(rows.iter().map(f));
    let fm_phi = gm(&|r| r.flowmap_frt.phi as f64);
    let tm_phi = gm(&|r| r.turbomap.phi as f64);
    let tf_phi = gm(&|r| r.turbomap_frt.phi as f64);
    let best_phi = gm(&|r| r.best_valid_phi() as f64);
    let fm_lut = gm(&|r| r.flowmap_frt.luts as f64);
    let tm_lut = gm(&|r| r.turbomap.luts as f64);
    let tf_lut = gm(&|r| r.turbomap_frt.luts as f64);
    let fm_ff = gm(&|r| r.flowmap_frt.ffs as f64);
    let tm_ff = gm(&|r| r.turbomap.ffs as f64);
    let tf_ff = gm(&|r| r.turbomap_frt.ffs as f64);
    let fm_cpu = gm(&|r| r.flowmap_frt.cpu.max(1e-4));
    let tm_cpu = gm(&|r| r.turbomap.cpu.max(1e-4));
    let tf_cpu = gm(&|r| r.turbomap_frt.cpu.max(1e-4));
    let stars = rows.iter().filter(|r| r.turbomap.star).count();

    println!();
    println!(
        "geomean    {:>12} | {:>4.1}{:>6.0}{:>6.1}{:>9.4} | {:>6.1}{:>6.0}{:>6.1}{:>9.4} | {:>5.1} | {:>4.1}{:>6.0}{:>6.1}{:>9.4}",
        "", fm_phi, fm_lut, fm_ff, fm_cpu, tm_phi, tm_lut, tm_ff, tm_cpu, best_phi, tf_phi, tf_lut, tf_ff, tf_cpu
    );
    let pct = |x: f64, base: f64| 100.0 * (x - base) / base;
    println!(
        "vs TurboMap-frt: FlowMap-frt Φ {:+.1}%  LUT {:+.1}%  FF {:+.1}%   |   TurboMap Φ {:+.1}%  LUT {:+.1}%  FF {:+.1}%   |   Best-valid Φ {:+.1}%",
        pct(fm_phi, tf_phi),
        pct(fm_lut, tf_lut),
        pct(fm_ff, tf_ff),
        pct(tm_phi, tf_phi),
        pct(tm_lut, tf_lut),
        pct(tm_ff, tf_ff),
        pct(best_phi, tf_phi),
    );
    println!(
        "TurboMap initial-state failures (*): {stars}/{} circuits   (paper: 10/18)",
        rows.len()
    );
    println!("paper geomeans for reference: Φ 7.0 / 5.6 / 5.8, %Φ +20.2 / -2.8 / +8.6 (best)");
}
