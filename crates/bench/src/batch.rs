//! Parallel Table-1 suite execution on the engine batch runner.
//!
//! Each circuit becomes one [`JobSpec`]: the job runs all three
//! algorithms via [`crate::try_run_row`] under the engine's panic
//! isolation and (optional) soft deadline. Reports come back in suite
//! order regardless of worker count, so the text table, the JSON
//! artifact and the `--jobs 1` baseline all agree on ordering.

use crate::Row;
use engine::{run_batch, BatchOptions, JobReport, JobSpec};
use std::time::Duration;

/// Configuration of one suite run.
#[derive(Debug, Clone, Copy)]
pub struct SuiteConfig {
    /// LUT input bound.
    pub k: usize,
    /// Run the random-vector equivalence check per mapping.
    pub verify: bool,
    /// Worker threads (0 → one worker).
    pub jobs: usize,
    /// Per-job soft deadline (`None` → no deadline).
    pub timeout: Option<Duration>,
    /// Keep only circuits with at most this many gates (`None` → all 18).
    pub max_gates: Option<usize>,
    /// Intra-job sweep parallelism for the TurboMap-frt Φ probes
    /// (`turbomap::Options::sweep_workers`: 1 serial, 0 auto). Mapped
    /// results are byte-identical for every value.
    pub sweep_workers: usize,
    /// Warm-start Φ probes from the previous feasible labels
    /// (`turbomap::Options::warm_start`).
    pub warm_start: bool,
    /// Partition-and-conquer TurboMap-frt leg: `None` monolithic,
    /// `Some(0)` auto block count, `Some(n)` fixed
    /// (see [`crate::try_run_row_partitioned`]).
    pub partitions: Option<usize>,
}

impl Default for SuiteConfig {
    fn default() -> SuiteConfig {
        SuiteConfig {
            k: 5,
            verify: true,
            jobs: 1,
            timeout: None,
            max_gates: None,
            sweep_workers: 1,
            warm_start: true,
            partitions: None,
        }
    }
}

/// Runs the Table-1 suite under `cfg`, one engine job per circuit.
/// Reports are in suite (submission) order.
pub fn run_table1_suite(cfg: &SuiteConfig) -> Vec<JobReport<Row>> {
    let suite = match cfg.max_gates {
        Some(m) => workloads::table1_suite_small(m),
        None => workloads::table1_suite(),
    };
    let specs: Vec<JobSpec<Row>> = suite
        .into_iter()
        .map(|(p, c)| {
            let mut opts = turbomap::Options::with_k(cfg.k);
            opts.sweep_workers = cfg.sweep_workers;
            opts.warm_start = cfg.warm_start;
            let verify = cfg.verify;
            let partitions = cfg.partitions;
            JobSpec::new(p.name, move || {
                crate::try_run_row_partitioned(p.name, &c, verify, opts, partitions)
            })
        })
        .collect();
    let mut opts = BatchOptions::with_jobs(cfg.jobs);
    if let Some(t) = cfg.timeout {
        opts = opts.with_timeout(t);
    }
    run_batch(specs, &opts)
}

/// Runs the `--report-dir` pass: re-maps every suite circuit (within
/// `cfg.max_gates`) through [`report::explain`] and replays the
/// rendered `turbomap-report/v1` document through the independent
/// checker. Returns `(name, Ok(json))` per circuit, or `Err` naming
/// what failed — an unverifiable witness, a negative slack, or a
/// missing critical node all count as failures, so a clean pass is the
/// paper's Φ-optimality claim checked end to end.
///
/// The pass runs *after* the measured suite on fresh mappings: report
/// extraction never touches the telemetry captured in the rows, which
/// keeps the canonical artifact byte-identical with reporting on or
/// off.
pub fn explain_suite(cfg: &SuiteConfig) -> Vec<(String, Result<String, String>)> {
    let suite = match cfg.max_gates {
        Some(m) => workloads::table1_suite_small(m),
        None => workloads::table1_suite(),
    };
    suite
        .into_iter()
        .map(|(p, c)| {
            let mut opts = turbomap::Options::with_k(cfg.k);
            opts.sweep_workers = cfg.sweep_workers;
            opts.warm_start = cfg.warm_start;
            (p.name.to_string(), explain_one(&c, opts))
        })
        .collect()
}

/// One circuit of the report pass: explain, render, parse back, verify.
fn explain_one(c: &netlist::Circuit, opts: turbomap::Options) -> Result<String, String> {
    let explained = report::explain(c, opts).map_err(|e| format!("explain: {e}"))?;
    // Slacks are unsigned by construction; the checker re-derives them and
    // rejects any arrival past Φ, so "all slacks ≥ 0" holds by type.
    if explained.report.nodes.iter().map(|n| n.slack).min() != Some(0) {
        return Err("no critical node (minimum slack is not 0)".into());
    }
    let doc = explained.to_json().render_pretty();
    let parsed = engine::JsonValue::parse(&doc).map_err(|e| format!("re-parse: {e}"))?;
    let summary = report::verify(&parsed, c, &explained.result.circuit)
        .map_err(|e| format!("checker: {e}"))?;
    match summary.witness {
        report::WitnessVerdict::Verified { .. } => Ok(doc),
        report::WitnessVerdict::Unavailable { reason } => {
            Err(format!("witness unavailable: {reason}"))
        }
    }
}

/// Names of jobs that did not complete, with their status keyword
/// (`failed` / `panicked` / `deadline`).
pub fn failures(reports: &[JobReport<Row>]) -> Vec<(String, &'static str)> {
    reports
        .iter()
        .filter(|r| !r.outcome.is_completed())
        .map(|r| (r.name.clone(), r.outcome.status()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Running the `--report-dir` certificate pass between two suite
    /// runs leaves the canonical artifact byte-identical: report
    /// extraction shares no telemetry with the measured rows.
    #[test]
    fn canonical_artifact_unchanged_by_report_pass() {
        let cfg = SuiteConfig {
            verify: false,
            max_gates: Some(40),
            ..SuiteConfig::default()
        };
        let before =
            crate::artifact::table1_json(&run_table1_suite(&cfg), cfg.k, 0, true).render_pretty();
        for (name, outcome) in explain_suite(&cfg) {
            outcome.unwrap_or_else(|e| panic!("{name}: certificate pass failed: {e}"));
        }
        let after =
            crate::artifact::table1_json(&run_table1_suite(&cfg), cfg.k, 0, true).render_pretty();
        assert_eq!(before, after);
    }

    #[test]
    fn small_suite_runs_in_order() {
        let cfg = SuiteConfig {
            verify: false,
            jobs: 4,
            max_gates: Some(40),
            ..SuiteConfig::default()
        };
        let reports = run_table1_suite(&cfg);
        assert!(!reports.is_empty());
        let expected: Vec<&str> = workloads::table1_suite_small(40)
            .iter()
            .map(|(p, _)| p.name)
            .collect();
        let got: Vec<&str> = reports.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(got, expected);
        assert!(failures(&reports).is_empty());
        for r in &reports {
            let row = r.outcome.completed().expect("job completed");
            assert!(row.turbomap_frt.phi >= row.turbomap.phi);
        }
    }
}
