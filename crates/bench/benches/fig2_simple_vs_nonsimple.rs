//! Criterion bench for Figure 2: simple vs non-simple FRT mapping
//! solutions. Restricting TurboMap-frt to weight-0 cones (`frt` horizon
//! 0) yields only *simple* solutions; the figure's point is that
//! non-simple solutions (registers pulled through LUTs) reach strictly
//! smaller clock periods on some circuits.

use criterion::{criterion_group, criterion_main, Criterion};
use turbomap::{turbomap_frt, Options};
use workloads::fig2_circuit;

fn bench_fig2(c: &mut Criterion) {
    let circuit = fig2_circuit();
    let full = Options {
        k: 3,
        ..Options::with_k(3)
    };
    let simple_only = Options {
        k: 3,
        weight_horizon: 0,
        ..Options::with_k(3)
    };
    // The figure's claim, checked once before timing.
    let phi_full = turbomap_frt(&circuit, full).expect("maps").period;
    let phi_simple = turbomap_frt(&circuit, simple_only).expect("maps").period;
    assert!(
        phi_full < phi_simple,
        "figure 2 property: non-simple Φ={phi_full} must beat simple-only Φ={phi_simple}"
    );
    println!("fig2: non-simple Φ = {phi_full}, simple-only Φ = {phi_simple}");

    let mut group = c.benchmark_group("fig2_simple_vs_nonsimple");
    group.bench_function("turbomap_frt_nonsimple", |b| {
        b.iter(|| turbomap_frt(&circuit, full).expect("maps"))
    });
    group.bench_function("turbomap_frt_simple_only", |b| {
        b.iter(|| turbomap_frt(&circuit, simple_only).expect("maps"))
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
