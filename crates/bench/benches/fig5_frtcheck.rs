//! Criterion bench for Figure 5: the FRTcheck label-pair iteration, per
//! target clock period — feasible and infeasible probes, plus the
//! binary-search driver. Also prints the sweep counts backing the §3.2
//! claim that convergence takes 5–15 iterations in practice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use turbomap::FrtContext;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_frtcheck");
    group.sample_size(10);
    for name in ["s1", "keyb", "sand"] {
        let preset = workloads::presets()
            .into_iter()
            .find(|p| p.name == name)
            .expect("preset");
        let circuit = turbomap::prepare(&workloads::build_preset(&preset), 5).expect("valid");
        let ctx = FrtContext::new(&circuit, 5, 32);
        // Find the boundary: smallest feasible Φ.
        let phi_min = (1..=64)
            .find(|&p| ctx.check(p).feasible)
            .expect("some Φ feasible");
        let res = ctx.check(phi_min);
        println!(
            "{name}: Φ_min = {phi_min}, FRTcheck sweeps at Φ_min = {} (paper: 5–15)",
            res.iterations
        );
        group.bench_with_input(
            BenchmarkId::new("feasible", name),
            &(&ctx, phi_min),
            |b, (ctx, phi)| b.iter(|| ctx.check(*phi)),
        );
        if phi_min > 1 {
            group.bench_with_input(
                BenchmarkId::new("infeasible", name),
                &(&ctx, phi_min - 1),
                |b, (ctx, phi)| b.iter(|| ctx.check(*phi)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
