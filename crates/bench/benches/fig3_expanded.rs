//! Criterion bench for Figure 3: expanded-circuit construction. The
//! figure's point — clustering past a register is invalid when no
//! register can be pushed forward (`frt(c) = 0`) — is encoded in the
//! bound of `F_v^i`; this bench measures the construction cost at
//! increasing bounds and circuit sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use turbomap::ExpandedCircuit;
use workloads::fig3_circuit;

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_expanded");
    let fig = fig3_circuit();
    let root = fig.find("c").expect("gate c");
    group.bench_function("fig3_build_f0", |b| {
        b.iter(|| ExpandedCircuit::build(&fig, root, 0, 100_000).expect("fits"))
    });

    // Larger circuits: expansion over a mid-size FSM preset.
    let preset = workloads::presets()
        .into_iter()
        .find(|p| p.name == "s1")
        .expect("preset");
    let circuit = turbomap::prepare(&workloads::build_preset(&preset), 5).expect("valid");
    let some_gate = circuit
        .gate_ids()
        .max_by_key(|&v| circuit.node(v).fanin().len())
        .expect("gates");
    for bound in [0u64, 1, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("s1_build", bound),
            &bound,
            |b, &bound| {
                b.iter(|| ExpandedCircuit::build(&circuit, some_gate, bound, 1_000_000))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
