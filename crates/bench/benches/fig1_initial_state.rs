//! Criterion bench for Figure 1: forward-retiming initial state
//! computation (one gate evaluation, linear time) vs backward-retiming
//! justification — the asymmetry that motivates the whole paper.

use criterion::{criterion_group, criterion_main, Criterion};
use retiming::{apply_retiming, Retiming};
use workloads::fig1_circuit;

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_initial_state");

    let fwd = fig1_circuit(true);
    let g = fwd.find("g").expect("gate exists");
    let mut r_fwd = Retiming::zero(&fwd);
    r_fwd.set(g, -1);
    group.bench_function("forward_move_by_simulation", |b| {
        b.iter(|| apply_retiming(&fwd, &r_fwd).expect("forward always succeeds"))
    });

    let bwd = fig1_circuit(false);
    let g = bwd.find("g").expect("gate exists");
    let mut r_bwd = Retiming::zero(&bwd);
    r_bwd.set(g, 1);
    group.bench_function("backward_move_by_justification", |b| {
        b.iter(|| apply_retiming(&bwd, &r_bwd).expect("AND(1) is justifiable"))
    });

    // Scaled version: a chain of gates retimed forward vs backward.
    for n in [16usize, 64, 256] {
        let chain = |registers_in_front: bool| {
            let mut c = netlist::Circuit::new(format!("chain{n}"));
            let a = c.add_input("a").expect("unique");
            let mut prev = a;
            for i in 0..n {
                let g = c
                    .add_gate(format!("g{i}"), netlist::TruthTable::not())
                    .expect("unique");
                let ffs = if registers_in_front && i == 0 {
                    vec![netlist::Bit::One]
                } else {
                    vec![]
                };
                c.connect(prev, g, ffs).expect("arity");
                prev = g;
            }
            let o = c.add_output("o").expect("unique");
            let ffs = if registers_in_front {
                vec![]
            } else {
                vec![netlist::Bit::One]
            };
            c.connect(prev, o, ffs).expect("arity");
            c
        };
        let fwd = chain(true);
        let mut r = Retiming::zero(&fwd);
        for i in 0..n / 2 {
            r.set(fwd.find(&format!("g{i}")).expect("gate"), -1);
        }
        group.bench_function(format!("forward_chain_{n}"), |b| {
            b.iter(|| apply_retiming(&fwd, &r).expect("forward"))
        });
        let bwd = chain(false);
        let mut r = Retiming::zero(&bwd);
        for i in n / 2..n {
            r.set(bwd.find(&format!("g{i}")).expect("gate"), 1);
        }
        group.bench_function(format!("backward_chain_{n}"), |b| {
            b.iter(|| apply_retiming(&bwd, &r).expect("NOT chains justify"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
