//! Criterion bench for Figure 4: min-height / min-weight K-cut search on
//! expanded circuits — the `LabelUpdate` primitive. The figure's claim
//! (the extra register on `(i1, a)` makes the 3-LUT legal) is asserted
//! before timing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use turbomap::{find_cut, min_weight_cut, ExpandedCircuit};
use workloads::{fig3_circuit, fig4_circuit};

fn bench_fig4(c: &mut Criterion) {
    // Claim check: at weight bound 1 (fig4's frt(c) = 1) a cut exists
    // whose cone absorbs b's register; at fig3's frt(c) = 0 the same
    // absorption is impossible (the only cuts keep b^1 as an input).
    let f4 = fig4_circuit();
    let root4 = f4.find("c").expect("gate");
    let exp4 = ExpandedCircuit::build(&f4, root4, 1, 100_000).expect("fits");
    let ls4 = vec![0i64; f4.num_nodes()];
    assert!(find_cut(&exp4, &ls4, 10, 100, 1, 3).is_some());

    let f3 = fig3_circuit();
    let root3 = f3.find("c").expect("gate");
    let exp3 = ExpandedCircuit::build(&f3, root3, 0, 100_000).expect("fits");
    let ls3 = vec![0i64; f3.num_nodes()];
    let cut3 = find_cut(&exp3, &ls3, 10, 100, 0, 3).expect("cut exists");
    let b3 = f3.find("b").expect("gate");
    assert!(
        cut3.signals.iter().any(|s| s.node == b3 && s.weight == 1),
        "fig3: b's register must stay on the cut (cannot be absorbed)"
    );

    let mut group = c.benchmark_group("fig4_frt_cut");
    group.bench_function("fig4_find_cut", |b| {
        b.iter(|| find_cut(&exp4, &ls4, 10, 100, 1, 3).expect("cut"))
    });
    group.bench_function("fig4_min_weight_cut", |b| {
        b.iter(|| min_weight_cut(&exp4, &ls4, 10, 100, 1, 3).expect("cut"))
    });

    // Scaled cut search on a mid-size preset gate.
    let preset = workloads::presets()
        .into_iter()
        .find(|p| p.name == "keyb")
        .expect("preset");
    let circuit = turbomap::prepare(&workloads::build_preset(&preset), 5).expect("valid");
    let ls = vec![0i64; circuit.num_nodes()];
    let deep = circuit
        .gate_ids()
        .filter_map(|v| {
            ExpandedCircuit::build(&circuit, v, 1, 100_000).map(|e| (v, e))
        })
        .max_by_key(|(_, e)| e.len())
        .expect("gates");
    for k in [3usize, 5, 8] {
        group.bench_with_input(BenchmarkId::new("keyb_deepest", k), &k, |b, &k| {
            b.iter(|| find_cut(&deep.1, &ls, 10, 1_000, 1, k))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
