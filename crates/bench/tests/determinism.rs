//! `--jobs`-independence: a suite run's results (Φ / LUT / FF per
//! circuit, ordering, counters) must not depend on the worker count.
//! The canonical artifact — timing fields zeroed — must therefore be
//! **byte-identical** between a 1-worker and an 8-worker run.

use bench::artifact::table1_json;
use bench::batch::{run_table1_suite, SuiteConfig};
use bench::VERIFY_VECTORS;

#[test]
fn canonical_artifact_identical_for_jobs_1_and_8() {
    // A debug-build-sized subset of the Table 1 suite.
    let base = SuiteConfig {
        verify: false,
        max_gates: Some(60),
        ..SuiteConfig::default()
    };
    let one = run_table1_suite(&SuiteConfig { jobs: 1, ..base });
    let eight = run_table1_suite(&SuiteConfig { jobs: 8, ..base });
    assert!(one.len() >= 2, "subset too small to exercise parallelism");

    let a = table1_json(&one, base.k, VERIFY_VECTORS, true).render_pretty();
    let b = table1_json(&eight, base.k, VERIFY_VECTORS, true).render_pretty();
    assert_eq!(a, b, "--jobs 1 and --jobs 8 artifacts differ");

    // The artifact carries real algorithmic work, not just zeros.
    assert!(a.contains("\"schema\": \"turbomap-bench/table1/v1\""));
    let sweeps_nonzero = one.iter().any(|r| {
        r.outcome
            .completed()
            .map(|row| {
                row.turbomap_frt
                    .telemetry
                    .counter(engine::telemetry::Counter::FrtSweeps)
                    > 0
            })
            .unwrap_or(false)
    });
    assert!(sweeps_nonzero, "no FRTcheck sweeps recorded");
}
