//! `--jobs`-independence, tracing-independence and memory-accounting
//! independence: a suite run's results (Φ / LUT / FF per circuit,
//! ordering, counters, value histograms) must not depend on the worker
//! count, on whether span tracing was enabled, or on whether heap
//! accounting was enabled. The canonical artifact — timing fields
//! zeroed, memory breakdowns omitted — must therefore be
//! **byte-identical** between a 1-worker and an 8-worker run, between a
//! traced and an untraced run, and between accounting-on and
//! accounting-off runs.

use bench::artifact::table1_json;
use bench::batch::{run_table1_suite, SuiteConfig};
use bench::VERIFY_VECTORS;

#[test]
fn canonical_artifact_identical_for_jobs_1_and_8() {
    // A debug-build-sized subset of the Table 1 suite.
    let base = SuiteConfig {
        verify: false,
        max_gates: Some(60),
        ..SuiteConfig::default()
    };
    let one = run_table1_suite(&SuiteConfig { jobs: 1, ..base });
    let eight = run_table1_suite(&SuiteConfig { jobs: 8, ..base });
    assert!(one.len() >= 2, "subset too small to exercise parallelism");

    let a = table1_json(&one, base.k, VERIFY_VECTORS, true).render_pretty();
    let b = table1_json(&eight, base.k, VERIFY_VECTORS, true).render_pretty();
    assert_eq!(a, b, "--jobs 1 and --jobs 8 artifacts differ");

    // The artifact carries real algorithmic work, not just zeros.
    assert!(a.contains("\"schema\": \"turbomap-bench/table1/v3\""));
    let sweeps_nonzero = one.iter().any(|r| {
        r.outcome
            .completed()
            .map(|row| {
                row.turbomap_frt
                    .telemetry
                    .counter(engine::telemetry::Counter::FrtSweeps)
                    > 0
            })
            .unwrap_or(false)
    });
    assert!(sweeps_nonzero, "no FRTcheck sweeps recorded");
}

#[test]
fn canonical_artifact_identical_with_tracing_on_and_off() {
    // Tracing must be observation-only: spans cost a little time (which
    // canonical artifacts zero anyway) but must never change an
    // algorithmic result, a counter, or a value histogram. The only
    // tracing-dependent histogram (`span_nanos`) is dropped from
    // canonical artifacts for exactly this reason.
    let cfg = SuiteConfig {
        verify: false,
        jobs: 2,
        max_gates: Some(40),
        ..SuiteConfig::default()
    };

    engine::trace::set_enabled(false);
    let off = run_table1_suite(&cfg);
    let off_text = table1_json(&off, cfg.k, VERIFY_VECTORS, true).render_pretty();

    engine::trace::set_enabled(true);
    let on = run_table1_suite(&cfg);
    engine::trace::set_enabled(false);
    let on_text = table1_json(&on, cfg.k, VERIFY_VECTORS, true).render_pretty();

    // The traced run actually captured spans, so the comparison is real.
    assert!(
        on.iter()
            .any(|r| r.trace.as_ref().is_some_and(|t| !t.events.is_empty())),
        "tracing was enabled but no events were captured"
    );
    assert_eq!(
        off_text, on_text,
        "canonical artifact differs with tracing enabled"
    );
}

#[test]
fn canonical_artifact_identical_with_mem_accounting_on_and_off() {
    // Heap accounting is observation-only, and heap numbers are
    // allocator- and scheduling-dependent besides — so canonical
    // artifacts *omit* the memory objects entirely rather than zeroing
    // them. Byte-identity across the accounting gate proves both points.
    let cfg = SuiteConfig {
        verify: false,
        jobs: 2,
        max_gates: Some(40),
        ..SuiteConfig::default()
    };

    engine::mem::set_enabled(false);
    let off = run_table1_suite(&cfg);
    let off_text = table1_json(&off, cfg.k, VERIFY_VECTORS, true).render_pretty();

    engine::mem::set_enabled(true);
    let on = run_table1_suite(&cfg);
    engine::mem::set_enabled(false);
    let on_text = table1_json(&on, cfg.k, VERIFY_VECTORS, true).render_pretty();

    // The accounting run actually attributed phase work (the MemScopes
    // record wall time even without an installed counting allocator),
    // so the comparison is real.
    assert!(
        on.iter().any(|r| {
            r.outcome
                .completed()
                .map(|row| !row.turbomap_frt.telemetry.mem.is_empty())
                .unwrap_or(false)
        }),
        "accounting was enabled but no memory phases were recorded"
    );
    assert_eq!(
        off_text, on_text,
        "canonical artifact differs with memory accounting enabled"
    );
    assert!(
        !on_text.contains("mem_phases") && !on_text.contains("job_mem"),
        "canonical artifact must omit memory breakdowns"
    );
}
