//! `promcheck` — validates a Prometheus text-exposition file.
//!
//! The strict [`engine::prom::validate_exposition`] checker behind a
//! CLI, so the CI serve-smoke job (and anyone debugging a scrape) can
//! validate `/metrics` output instead of grepping it: every sample line
//! must belong to a declared `# TYPE` family, label syntax must be
//! well-formed, and values must parse.
//!
//! Exits 0 with a one-line summary on success, 1 with the first
//! violation otherwise, 2 on usage errors.

use engine::{log, JsonValue};

fn main() {
    log::init(false);
    let mut args = std::env::args().skip(1);
    let (Some(path), None) = (args.next(), args.next()) else {
        eprintln!("usage: promcheck <metrics.prom>");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            log::error(
                "promcheck",
                "cannot read exposition",
                &[
                    ("path", JsonValue::str(path)),
                    ("error", JsonValue::str(e.to_string())),
                ],
            );
            std::process::exit(1);
        }
    };
    match engine::prom::validate_exposition(&text) {
        Ok(()) => {
            let samples = text
                .lines()
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .count();
            println!("{path}: OK ({samples} samples)");
        }
        Err(e) => {
            log::error(
                "promcheck",
                "exposition is invalid",
                &[("path", JsonValue::str(path)), ("error", JsonValue::str(e))],
            );
            std::process::exit(1);
        }
    }
}
