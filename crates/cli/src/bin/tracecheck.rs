//! `tracecheck` — validates a Chrome trace-event JSON file.
//!
//! A std-only checker for the traces `tmfrt map --trace-out` and
//! `table1 --trace-dir` emit: the CI smoke job (and anyone debugging a
//! trace that Perfetto refuses to load) runs it instead of eyeballing
//! JSON. Checks, in order:
//!
//! 1. the file parses as JSON with a `traceEvents` array;
//! 2. every event has a `name` and a phase (`B`/`E`/`i`/`M`);
//! 3. non-metadata events carry a `ts` and timestamps never go
//!    backwards (the exporter emits ring order, which is time order);
//! 4. `B`/`E` spans balance: every exit matches the innermost open
//!    enter and nothing is left open at the end.
//!
//! Exits 0 with a one-line summary on success, 1 with the first
//! violation otherwise, 2 on usage errors.

use engine::{log, JsonValue};

fn main() {
    log::init(false);
    let mut args = std::env::args().skip(1);
    let (Some(path), None) = (args.next(), args.next()) else {
        eprintln!("usage: tracecheck <trace.json>");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            log::error(
                "tracecheck",
                "cannot read trace",
                &[
                    ("path", JsonValue::str(path)),
                    ("error", JsonValue::str(e.to_string())),
                ],
            );
            std::process::exit(1);
        }
    };
    match check(&text) {
        Ok(summary) => println!("{path}: OK ({summary})"),
        Err(e) => {
            log::error(
                "tracecheck",
                "trace is invalid",
                &[("path", JsonValue::str(path)), ("error", JsonValue::str(e))],
            );
            std::process::exit(1);
        }
    }
}

/// Validates trace text, returning a human-readable summary.
fn check(text: &str) -> Result<String, String> {
    let doc = JsonValue::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or("missing `traceEvents` array")?;
    let mut stack: Vec<String> = Vec::new();
    let mut last_ts = 0u64;
    let mut spans = 0usize;
    let mut instants = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing `name`"))?;
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing `ph`"))?;
        if ph == "M" {
            continue; // metadata events carry no timestamp
        }
        let ts = ev
            .get("ts")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("event {i} ({name}): missing `ts`"))?;
        if ts < last_ts {
            return Err(format!(
                "event {i} ({name}): timestamp {ts} < previous {last_ts}"
            ));
        }
        last_ts = ts;
        match ph {
            "B" => stack.push(name.to_string()),
            "E" => {
                let open = stack
                    .pop()
                    .ok_or_else(|| format!("event {i}: exit `{name}` with no open span"))?;
                if open != name {
                    return Err(format!(
                        "event {i}: exit `{name}` does not match open span `{open}`"
                    ));
                }
                spans += 1;
            }
            "i" => instants += 1,
            other => return Err(format!("event {i} ({name}): unknown phase `{other}`")),
        }
    }
    if !stack.is_empty() {
        return Err(format!("unclosed spans at end of trace: {stack:?}"));
    }
    Ok(format!(
        "{} events, {spans} balanced spans, {instants} instants",
        events.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exported_trace() -> String {
        engine::trace::set_enabled(true);
        engine::trace::job_start();
        {
            let _outer = engine::trace::span("outer");
            engine::trace::event1("tick", "n", 1);
            let _inner = engine::trace::span1("inner", "k", 5);
        }
        let buffer = engine::trace::take_thread();
        engine::trace::set_enabled(false);
        engine::trace::chrome_trace(&buffer, "test").render_pretty()
    }

    #[test]
    fn real_export_passes() {
        let summary = check(&exported_trace()).expect("exported trace must validate");
        assert!(summary.contains("2 balanced spans"), "{summary}");
        assert!(summary.contains("1 instants"), "{summary}");
    }

    #[test]
    fn malformed_traces_fail() {
        assert!(check("not json").is_err());
        assert!(check("{\"foo\": 1}").is_err());
        // Mismatched exit name.
        let bad = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1,"pid":1,"tid":1},
            {"name":"b","ph":"E","ts":2,"pid":1,"tid":1}]}"#;
        assert!(check(bad).unwrap_err().contains("does not match"));
        // Backwards timestamp.
        let back = r#"{"traceEvents":[
            {"name":"a","ph":"i","ts":5,"pid":1,"tid":1},
            {"name":"b","ph":"i","ts":4,"pid":1,"tid":1}]}"#;
        assert!(check(back).unwrap_err().contains("timestamp"));
        // Unclosed span.
        let open = r#"{"traceEvents":[{"name":"a","ph":"B","ts":1,"pid":1,"tid":1}]}"#;
        assert!(check(open).unwrap_err().contains("unclosed"));
    }
}
