//! `tmfrt batch` — map every circuit in a directory in parallel.
//!
//! Each `.blif` / `.kiss` / `.kiss2` file becomes one job on the
//! `engine` batch runner: panic-isolated, optionally deadline-bounded,
//! with per-job telemetry. Files are processed in sorted name order and
//! reported in that order regardless of `--jobs`, so output is
//! deterministic. Mapped circuits can be written to an output directory
//! as `<stem>.blif`.

use crate::{load_circuit, run, Algorithm, Args};
use engine::{run_batch, BatchOptions, JobOutcome, JobReport, JobSpec};
use std::path::PathBuf;
use std::time::Duration;

/// Usage text for the `batch` subcommand.
pub const BATCH_USAGE: &str = "\
tmfrt batch — map every .blif/.kiss2 circuit in a directory in parallel

USAGE: tmfrt batch <dir> [--jobs N] [--timeout-secs S] [-o OUTDIR]
                   [-a ALGO] [-k K] [--pushback] [--verify N] [--onehot]
                   [--pack] [--strash] [--metrics-out FILE] [-q]

  <dir>             directory scanned (non-recursively) for .blif, .kiss
                    and .kiss2 files, processed in sorted name order
  --jobs N          worker threads (default 1); results and ordering are
                    identical for any value
  --timeout-secs S  per-circuit soft deadline; an over-deadline circuit
                    is reported and skipped, the rest still complete
  -o OUTDIR         write each mapped circuit to OUTDIR/<stem>.blif
  --metrics-out F   write Prometheus text exposition (job outcomes, phase
                    timers, counters, histogram quantiles) to F
  -q, --quiet       suppress per-circuit reports on stderr (failures and
                    errors still print)
  remaining flags   as in single-circuit mode (see `tmfrt --help`)

Per-circuit reports and progress go to stderr; stdout stays empty.";

/// Parsed `batch` subcommand arguments.
#[derive(Debug, Clone)]
pub struct BatchArgs {
    /// Directory to scan.
    pub dir: String,
    /// Worker threads (0 → one worker).
    pub jobs: usize,
    /// Per-circuit soft deadline.
    pub timeout: Option<Duration>,
    /// Directory for mapped BLIF outputs.
    pub out_dir: Option<String>,
    /// Path for the Prometheus text-exposition metrics file.
    pub metrics_out: Option<String>,
    /// Suppress per-circuit reports on stderr.
    pub quiet: bool,
    /// Template for per-file runs (`input` filled in per job).
    pub run: Args,
}

impl BatchArgs {
    /// Parses `batch` arguments (everything after the subcommand word).
    ///
    /// # Errors
    ///
    /// Returns a usage message on malformed input.
    pub fn parse(raw: &[String]) -> Result<BatchArgs, String> {
        let mut out = BatchArgs {
            dir: String::new(),
            jobs: 1,
            timeout: None,
            out_dir: None,
            metrics_out: None,
            quiet: false,
            run: Args {
                input: String::new(),
                output: None,
                algorithm: Algorithm::TurboMapFrt,
                k: 5,
                pushback: false,
                verify: None,
                onehot: false,
                pack: false,
                strash: false,
                sweep_workers: 1,
                partitions: None,
                jobs: 0,
                no_warm_start: false,
                trace_out: None,
                report: None,
                report_inline: false,
                quiet: false,
            },
        };
        let mut it = raw.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--jobs" => {
                    out.jobs = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| "--jobs needs a number".to_string())?;
                }
                "--timeout-secs" => {
                    let s: u64 = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| "--timeout-secs needs a number".to_string())?;
                    out.timeout = Some(Duration::from_secs(s));
                }
                "-o" | "--out-dir" => {
                    out.out_dir = Some(
                        it.next()
                            .ok_or_else(|| "--out-dir needs a path".to_string())?
                            .clone(),
                    );
                }
                "-a" | "--algorithm" => {
                    out.run.algorithm = it
                        .next()
                        .ok_or_else(|| "--algorithm needs a name".to_string())?
                        .parse()?;
                }
                "-k" => {
                    out.run.k = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| "-k needs a number ≥ 2".to_string())?;
                    if out.run.k < 2 {
                        return Err("-k must be at least 2".into());
                    }
                }
                "--pushback" => out.run.pushback = true,
                "--verify" => {
                    out.run.verify = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| "--verify needs a vector count".to_string())?,
                    );
                }
                "--onehot" => out.run.onehot = true,
                "--pack" => out.run.pack = true,
                "--strash" => out.run.strash = true,
                "--metrics-out" => {
                    out.metrics_out = Some(
                        it.next()
                            .ok_or_else(|| "--metrics-out needs a path".to_string())?
                            .clone(),
                    );
                }
                "-q" | "--quiet" => out.quiet = true,
                "-h" | "--help" => return Err(BATCH_USAGE.to_string()),
                other if out.dir.is_empty() && !other.starts_with('-') => {
                    out.dir = other.to_string();
                }
                other => return Err(format!("unexpected argument `{other}`\n{BATCH_USAGE}")),
            }
        }
        if out.dir.is_empty() {
            return Err(BATCH_USAGE.to_string());
        }
        Ok(out)
    }
}

/// Circuit files in `dir`, sorted by file name (the batch submission
/// order — and therefore the report order).
///
/// # Errors
///
/// Returns a message when the directory cannot be read.
pub fn batch_files(dir: &str) -> Result<Vec<PathBuf>, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading `{dir}`: {e}"))?;
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.extension()
                .and_then(|x| x.to_str())
                .is_some_and(|x| matches!(x, "blif" | "kiss" | "kiss2"))
        })
        .collect();
    files.sort();
    Ok(files)
}

/// One file's result carried out of the worker.
#[derive(Debug)]
pub struct FileResult {
    /// The per-run report text of [`run`].
    pub report: String,
    /// `⋆`: initial state lost (general retiming only).
    pub star: bool,
    /// Rendered BLIF of the mapped circuit (when an output dir is set).
    pub blif: Option<String>,
}

/// Outcome of a whole batch run.
#[derive(Debug)]
pub struct BatchSummary {
    /// One report per file, in sorted-file order.
    pub reports: Vec<JobReport<FileResult>>,
    /// Names and status keywords of jobs that did not complete.
    pub failures: Vec<(String, &'static str)>,
}

/// Runs the batch: one engine job per circuit file.
///
/// # Errors
///
/// Returns a message when the directory is unreadable, empty of circuit
/// files, or the output directory cannot be created.
pub fn run_batch_dir(args: &BatchArgs) -> Result<BatchSummary, String> {
    let files = batch_files(&args.dir)?;
    if files.is_empty() {
        return Err(format!("no .blif/.kiss/.kiss2 files in `{}`", args.dir));
    }
    if let Some(dir) = &args.out_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating `{dir}`: {e}"))?;
    }
    let want_blif = args.out_dir.is_some();
    let specs: Vec<JobSpec<FileResult>> = files
        .iter()
        .map(|path| {
            let mut run_args = args.run.clone();
            run_args.input = path.display().to_string();
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| run_args.input.clone());
            JobSpec::new(name, move || {
                let circuit = load_circuit(&run_args)?;
                let outcome = run(&run_args, &circuit)?;
                Ok(FileResult {
                    report: outcome.report,
                    star: outcome.star,
                    blif: want_blif.then(|| netlist::write_blif(&outcome.circuit)),
                })
            })
        })
        .collect();
    let mut opts = BatchOptions::with_jobs(args.jobs);
    if let Some(t) = args.timeout {
        opts = opts.with_timeout(t);
    }
    let reports = run_batch(specs, &opts);

    // Write outputs on this thread, in report order (deterministic).
    if let Some(dir) = &args.out_dir {
        for (path, report) in files.iter().zip(&reports) {
            if let JobOutcome::Completed(res) = &report.outcome {
                if let Some(blif) = &res.blif {
                    let stem = path
                        .file_stem()
                        .map(|s| s.to_string_lossy().into_owned())
                        .unwrap_or_else(|| report.name.clone());
                    let out = PathBuf::from(dir).join(format!("{stem}.blif"));
                    std::fs::write(&out, blif)
                        .map_err(|e| format!("writing `{}`: {e}", out.display()))?;
                }
            }
        }
    }

    if let Some(path) = &args.metrics_out {
        let text = crate::metrics::render_metrics(&reports);
        std::fs::write(path, text).map_err(|e| format!("writing `{path}`: {e}"))?;
    }

    let failures = reports
        .iter()
        .filter(|r| !r.outcome.is_completed())
        .map(|r| (r.name.clone(), r.outcome.status()))
        .collect();
    Ok(BatchSummary { reports, failures })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn fixture_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tmfrt_batch_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let blif = "\
.model t
.inputs a
.outputs z
.names a s z
10 1
01 1
.latch z s 0
.end
";
        let kiss = ".i 1\n.o 1\n.s 2\n.r A\n1 A B 1\n- B A 0\n.e\n";
        std::fs::write(dir.join("b_second.blif"), blif).unwrap();
        std::fs::write(dir.join("a_first.kiss2"), kiss).unwrap();
        std::fs::write(dir.join("ignored.txt"), "not a circuit").unwrap();
        dir
    }

    #[test]
    fn parses_batch_flags() {
        let a = BatchArgs::parse(&argv(
            "circuits --jobs 4 --timeout-secs 30 -o out -a turbomap -k 4 --verify 64 \
             --metrics-out m.prom -q",
        ))
        .unwrap();
        assert_eq!(a.dir, "circuits");
        assert_eq!(a.jobs, 4);
        assert_eq!(a.timeout, Some(Duration::from_secs(30)));
        assert_eq!(a.out_dir.as_deref(), Some("out"));
        assert_eq!(a.run.algorithm, Algorithm::TurboMap);
        assert_eq!(a.run.k, 4);
        assert_eq!(a.run.verify, Some(64));
        assert_eq!(a.metrics_out.as_deref(), Some("m.prom"));
        assert!(a.quiet);
    }

    #[test]
    fn rejects_missing_dir() {
        assert!(BatchArgs::parse(&argv("")).is_err());
        assert!(BatchArgs::parse(&argv("--jobs 2")).is_err());
    }

    #[test]
    fn files_are_sorted_and_filtered() {
        let dir = fixture_dir("sort");
        let files = batch_files(&dir.display().to_string()).unwrap();
        let names: Vec<String> = files
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["a_first.kiss2", "b_second.blif"]);
    }

    #[test]
    fn batch_maps_directory_and_writes_outputs() {
        let dir = fixture_dir("run");
        let out = dir.join("mapped");
        let args = BatchArgs::parse(&argv(&format!(
            "{} --jobs 2 -o {} --verify 64",
            dir.display(),
            out.display()
        )))
        .unwrap();
        let summary = run_batch_dir(&args).unwrap();
        assert_eq!(summary.reports.len(), 2);
        assert!(summary.failures.is_empty());
        assert_eq!(summary.reports[0].name, "a_first.kiss2");
        assert_eq!(summary.reports[1].name, "b_second.blif");
        for r in &summary.reports {
            let res = r.outcome.completed().unwrap();
            assert!(res.report.contains("turbomap-frt"));
            assert!(res.report.contains("verify: equivalent"));
        }
        assert!(out.join("a_first.blif").exists());
        assert!(out.join("b_second.blif").exists());
        // The written outputs parse back as valid circuits.
        let text = std::fs::read_to_string(out.join("b_second.blif")).unwrap();
        netlist::parse_blif(&text).unwrap();
    }

    #[test]
    fn unparseable_file_fails_without_sinking_batch() {
        let dir = fixture_dir("bad");
        std::fs::write(dir.join("c_broken.blif"), ".model x\n.names undefined z\n").unwrap();
        let args = BatchArgs::parse(&argv(&format!("{} --jobs 2", dir.display()))).unwrap();
        let summary = run_batch_dir(&args).unwrap();
        assert_eq!(summary.reports.len(), 3);
        assert_eq!(summary.failures.len(), 1);
        assert_eq!(summary.failures[0].0, "c_broken.blif");
        assert!(summary.reports[0].outcome.is_completed());
        assert!(summary.reports[1].outcome.is_completed());
    }
}
