//! Library backing the `tmfrt` command-line tool: argument parsing and
//! the driver logic, separated from `main` so they can be unit-tested.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod fuzz;
pub mod metrics;
pub mod profile;
pub mod serve;

use netlist::Circuit;
use std::fmt::Write as _;

/// Which mapping flow to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Conventional: FlowMap per block + forward retiming.
    FlowMapFrt,
    /// The paper's algorithm: optimal mapping with forward retiming.
    TurboMapFrt,
    /// Optimal mapping with general retiming (initial state may be lost).
    TurboMap,
    /// No mapping: forward retiming only.
    RetimeForward,
    /// No mapping: general (Leiserson–Saxe) retiming only.
    RetimeGeneral,
}

impl std::str::FromStr for Algorithm {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "flowmap-frt" => Ok(Algorithm::FlowMapFrt),
            "turbomap-frt" => Ok(Algorithm::TurboMapFrt),
            "turbomap" => Ok(Algorithm::TurboMap),
            "retime-forward" => Ok(Algorithm::RetimeForward),
            "retime-general" => Ok(Algorithm::RetimeGeneral),
            other => Err(format!(
                "unknown algorithm `{other}` (expected flowmap-frt, turbomap-frt, \
                 turbomap, retime-forward or retime-general)"
            )),
        }
    }
}

/// Parsed command line.
#[derive(Debug, Clone)]
pub struct Args {
    /// Input path (`.blif` or `.kiss2`), or `-` for stdin, or
    /// `gen:<preset>` for a generated Table-1 circuit.
    pub input: String,
    /// Output BLIF path (stdout when absent).
    pub output: Option<String>,
    /// Flow to run.
    pub algorithm: Algorithm,
    /// LUT input bound.
    pub k: usize,
    /// Run the Section-5 backward push preprocessing first.
    pub pushback: bool,
    /// Verify the result by random simulation (vector count).
    pub verify: Option<usize>,
    /// One-hot instead of binary encoding for KISS2 synthesis.
    pub onehot: bool,
    /// Run the LUT packing area post-pass on the mapped result.
    pub pack: bool,
    /// Run structural hashing on the mapped result.
    pub strash: bool,
    /// Intra-job sweep parallelism for turbomap-frt (1 = serial,
    /// 0 = auto). Results are identical for every setting.
    pub sweep_workers: usize,
    /// Partition-and-conquer mapping: `None` off, `Some(0)` auto (one
    /// block per ~100k gates), `Some(n)` a fixed block count.
    /// turbomap-frt only.
    pub partitions: Option<usize>,
    /// Block-level worker threads for `--partitions` (0 → one worker).
    /// Results are byte-identical for every setting.
    pub jobs: usize,
    /// Disable warm-starting Φ probes from the previous feasible probe.
    pub no_warm_start: bool,
    /// Write a Chrome-trace JSON of the run's spans to this path.
    pub trace_out: Option<String>,
    /// Write a `turbomap-report/v1` JSON (Φ-optimality certificate +
    /// timing attribution) to this path. Only for `turbomap-frt`.
    pub report: Option<String>,
    /// Generate the report without writing a file and hand the JSON
    /// back in [`RunOutcome::report_json`]. Not a CLI flag — set
    /// programmatically (`tmfrt serve` uses it for `report=1` jobs).
    pub report_inline: bool,
    /// Suppress the progress report on stderr (results and errors still
    /// print: circuit on stdout, errors on stderr).
    pub quiet: bool,
}

impl Args {
    /// Parses raw arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a usage message on malformed input.
    pub fn parse(raw: &[String]) -> Result<Args, String> {
        let mut args = Args {
            input: String::new(),
            output: None,
            algorithm: Algorithm::TurboMapFrt,
            k: 5,
            pushback: false,
            verify: None,
            onehot: false,
            pack: false,
            strash: false,
            sweep_workers: 1,
            partitions: None,
            jobs: 0,
            no_warm_start: false,
            trace_out: None,
            report: None,
            report_inline: false,
            quiet: false,
        };
        // `tmfrt map <input> …` is an explicit alias for the default
        // single-circuit mode (symmetric with `tmfrt batch …`).
        let raw = match raw.first().map(String::as_str) {
            Some("map") => &raw[1..],
            _ => raw,
        };
        let mut it = raw.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "-o" | "--output" => {
                    args.output = Some(
                        it.next()
                            .ok_or_else(|| "--output needs a path".to_string())?
                            .clone(),
                    );
                }
                "-a" | "--algorithm" => {
                    args.algorithm = it
                        .next()
                        .ok_or_else(|| "--algorithm needs a name".to_string())?
                        .parse()?;
                }
                "-k" => {
                    args.k = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| "-k needs a number ≥ 2".to_string())?;
                    if args.k < 2 {
                        return Err("-k must be at least 2".into());
                    }
                }
                "--pushback" => args.pushback = true,
                "--verify" => {
                    args.verify = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| "--verify needs a vector count".to_string())?,
                    );
                }
                "--onehot" => args.onehot = true,
                "--pack" => args.pack = true,
                "--strash" => args.strash = true,
                "--sweep-workers" => {
                    args.sweep_workers = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| "--sweep-workers needs a count (0 = auto)".to_string())?;
                }
                "--partitions" => {
                    let v = it
                        .next()
                        .ok_or_else(|| "--partitions needs a count or `auto`".to_string())?;
                    args.partitions = Some(parse_partitions(v)?);
                }
                "--jobs" => {
                    args.jobs = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| "--jobs needs a count (0 = one worker)".to_string())?;
                }
                "--no-warm-start" => args.no_warm_start = true,
                "--trace-out" => {
                    args.trace_out = Some(
                        it.next()
                            .ok_or_else(|| "--trace-out needs a path".to_string())?
                            .clone(),
                    );
                }
                "--report" => {
                    args.report = Some(
                        it.next()
                            .ok_or_else(|| "--report needs a path".to_string())?
                            .clone(),
                    );
                }
                "-q" | "--quiet" => args.quiet = true,
                "-h" | "--help" => return Err(USAGE.to_string()),
                other if args.input.is_empty() && !other.starts_with('-') => {
                    args.input = other.to_string();
                }
                other => return Err(format!("unexpected argument `{other}`\n{USAGE}")),
            }
        }
        if args.input.is_empty() {
            return Err(USAGE.to_string());
        }
        Ok(args)
    }
}

/// Parses a `--partitions` (or `partitions=`) value: `auto` → 0,
/// otherwise a block count ≥ 1.
pub(crate) fn parse_partitions(v: &str) -> Result<usize, String> {
    if v == "auto" {
        return Ok(0);
    }
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err("--partitions needs a count ≥ 1 or `auto`".into()),
    }
}

/// Usage text.
pub const USAGE: &str = "\
tmfrt — FPGA mapping with forward retiming (Cong & Wu, DAC'98 reproduction)

USAGE: tmfrt [map] <input> [-o out.blif] [-a ALGO] [-k K] [--pushback] [--verify N]
             [--partitions K|auto] [--jobs N] [--onehot] [--trace-out t.json]
             [--report r.json] [-q]
       tmfrt explain <input> [-k K] [--json] [--check] …  (see `tmfrt explain --help`)
       tmfrt batch <dir> [--jobs N] [--timeout-secs S] [-o OUTDIR] …  (see `tmfrt batch --help`)
       tmfrt fuzz [--seed A..=B] [--cases N] [--jobs N] …  (see `tmfrt fuzz --help`)
       tmfrt stats <input> [--onehot]  (see `tmfrt stats --help`)

  <input>      circuit: a .blif file (flat or hierarchical — multi-model
               files are flattened), a .kiss2 file, `-` (BLIF on stdin),
               or gen:<name> for a generated benchmark (a Table-1 preset
               like gen:sand, or a large ingest preset like gen:hier100k)
  -a ALGO      flowmap-frt | turbomap-frt (default) | turbomap |
               retime-forward | retime-general
  -k K         LUT input bound (default 5; ignored by retime-*)
  --pushback   push registers toward the PIs first (Section-5 methodology)
  --verify N   check sequential equivalence with N random vectors
  --onehot     one-hot state encoding for KISS2 inputs (default binary)
  --pack       LUT packing area post-pass on the result
  --strash     structural hashing (duplicate-logic sweep) on the result
  --sweep-workers N
               threads for the turbomap-frt label sweeps (default 1,
               0 = all cores); any N gives byte-identical results
  --partitions K|auto
               partition-and-conquer: split the design at FF boundaries
               into K blocks (auto = one per ~100k gates), map each with
               turbomap-frt, stitch the results (turbomap-frt only)
  --jobs N     block-level workers for --partitions (default 1); any N
               gives byte-identical results
  --no-warm-start
               cold-start every Φ probe (A/B switch; results unchanged)
  --trace-out  write a Chrome-trace JSON of the run's spans (open in
               Perfetto or chrome://tracing)
  --report     write a turbomap-report/v1 JSON (Φ-optimality certificate
               plus timing attribution; turbomap-frt only)
  -q, --quiet  suppress the progress report on stderr

Results go to stdout (or -o); progress and errors go to stderr.";

/// Loads a circuit from the CLI input specification.
///
/// # Errors
///
/// Returns a human-readable message on I/O, parse or synthesis errors.
pub fn load_circuit(args: &Args) -> Result<Circuit, String> {
    load_input(&args.input, args.onehot)
}

/// Loads a circuit from an input specification (path, `-`, or
/// `gen:<preset>`) — the shared front door of `map`, `explain` and
/// `stats`.
///
/// # Errors
///
/// Returns a human-readable message on I/O, parse or synthesis errors.
pub fn load_input(input: &str, onehot: bool) -> Result<Circuit, String> {
    if let Some(name) = input.strip_prefix("gen:") {
        if let Some(preset) = workloads::presets().into_iter().find(|p| p.name == name) {
            return Ok(workloads::build_preset(&preset));
        }
        if let Some(spec) = workloads::large_preset(name) {
            // Route the generated hierarchy through the streaming
            // front-end, so `gen:hier*` exercises the same ingest path
            // as a file on disk.
            return blifio::read_circuit_str(&workloads::hier_to_string(&spec))
                .map_err(|e| e.to_string());
        }
        return Err(format!(
            "unknown preset `{name}`; available: {}",
            workloads::presets()
                .iter()
                .map(|p| p.name)
                .map(String::from)
                .chain(workloads::large_presets().iter().map(|s| s.name.clone()))
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    let enc = if onehot {
        workloads::Encoding::OneHot
    } else {
        workloads::Encoding::Binary
    };
    let link = blifio::LinkOptions {
        encoding: enc,
        ..blifio::LinkOptions::default()
    };
    // Stream straight from the file unless the extension or a 4 KiB
    // header probe says KISS2; hierarchical, multi-model and
    // yosys-extended BLIF all flatten here without the text ever being
    // held whole.
    if input != "-" && !looks_like_kiss(input, "") && !probe_kiss(input)? {
        return blifio::read_circuit_path_opts(input, &link).map_err(|e| e.to_string());
    }
    let text = if input == "-" {
        use std::io::Read;
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(input).map_err(|e| format!("reading `{}`: {e}", input))?
    };
    if looks_like_kiss(input, &text) {
        let stg = workloads::parse_kiss2(&text).map_err(|e| e.to_string())?;
        workloads::synthesize_stg(&stg, enc, "kiss2").map_err(|e| e.to_string())
    } else {
        blifio::read_circuit_str_opts(&text, &link).map_err(|e| e.to_string())
    }
}

/// KISS2 detection: by extension, or by the `.i`/`.s`/`.r` header shape
/// when the content is available.
fn looks_like_kiss(path: &str, text: &str) -> bool {
    path.ends_with(".kiss2")
        || path.ends_with(".kiss")
        || text.contains("\n.s ")
        || text.starts_with(".i ") && text.contains(".r ")
}

/// Checks the first 4 KiB of a file for the KISS2 header shape without
/// reading the whole file (large BLIF inputs stay streamed).
fn probe_kiss(path: &str) -> Result<bool, String> {
    use std::io::Read;
    let mut f = std::fs::File::open(path).map_err(|e| format!("reading `{path}`: {e}"))?;
    let mut head = [0u8; 4096];
    let n = f
        .read(&mut head)
        .map_err(|e| format!("reading `{path}`: {e}"))?;
    let text = String::from_utf8_lossy(&head[..n]);
    Ok(looks_like_kiss("", &text))
}

/// Parsed `tmfrt stats` command line.
#[derive(Debug, Clone)]
pub struct StatsArgs {
    /// Input path, `-` for stdin, or `gen:<preset>`.
    pub input: String,
    /// One-hot encoding for embedded KISS FSMs.
    pub onehot: bool,
    /// Partition preview: `None` off, `Some(0)` auto, `Some(n)` a fixed
    /// block count. Plans the FF-boundary partition without mapping.
    pub partition_preview: Option<usize>,
    /// LUT input bound for the preview's Φ estimate.
    pub k: usize,
}

impl StatsArgs {
    /// Parses raw arguments (after the `stats` word).
    ///
    /// # Errors
    ///
    /// Returns a usage message on malformed input.
    pub fn parse(raw: &[String]) -> Result<StatsArgs, String> {
        let mut args = StatsArgs {
            input: String::new(),
            onehot: false,
            partition_preview: None,
            k: 5,
        };
        let mut it = raw.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--onehot" => args.onehot = true,
                "--partition-preview" => {
                    let v = it
                        .next()
                        .ok_or_else(|| "--partition-preview needs a count or `auto`".to_string())?;
                    args.partition_preview = Some(
                        parse_partitions(v)
                            .map_err(|_| "--partition-preview needs a count ≥ 1 or `auto`")?,
                    );
                }
                "-k" => {
                    args.k = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| "-k needs a number ≥ 2".to_string())?;
                    if args.k < 2 {
                        return Err("-k must be at least 2".into());
                    }
                }
                "-h" | "--help" => return Err(STATS_USAGE.to_string()),
                other if args.input.is_empty() && !other.starts_with('-') => {
                    args.input = other.to_string();
                }
                other => return Err(format!("unexpected argument `{other}`\n{STATS_USAGE}")),
            }
        }
        if args.input.is_empty() {
            return Err(STATS_USAGE.to_string());
        }
        Ok(args)
    }
}

/// Usage text for `tmfrt stats`.
pub const STATS_USAGE: &str = "\
tmfrt stats — ingestion report: per-model counts and post-flatten totals

USAGE: tmfrt stats <input> [--onehot] [--partition-preview K|auto] [-k K]

  <input>    a .blif file (flat or hierarchical), a .kiss2 file, `-`
             (BLIF on stdin), or gen:<preset>
  --onehot   one-hot state encoding for embedded KISS FSMs
  --partition-preview K|auto
             plan the FF-boundary partition without mapping: SCC and
             cluster counts, per-block gates, cut size, Φ estimate
  -k K       LUT bound for the preview's Φ estimate (default 5)";

/// Runs `tmfrt stats`: for BLIF inputs, a per-model table (PI/PO, gates,
/// latches, subckts, KISS blocks) followed by the flattened circuit's
/// totals; for KISS2 and generated inputs, just the circuit totals.
///
/// # Errors
///
/// Returns a human-readable message on I/O or parse errors.
pub fn run_stats(args: &StatsArgs) -> Result<String, String> {
    let enc = if args.onehot {
        workloads::Encoding::OneHot
    } else {
        workloads::Encoding::Binary
    };
    let link = blifio::LinkOptions {
        encoding: enc,
        ..blifio::LinkOptions::default()
    };
    let pv = args.partition_preview.map(|p| (p, args.k));
    let circuit_only = |c: &Circuit| -> Result<String, String> {
        let stats = netlist::CircuitStats::of(c).map_err(|e| e.to_string())?;
        let mut out = format!("flat:   {stats}\n");
        if let Some((p, k)) = pv {
            out.push_str(&render_partition_preview(c, p, k));
        }
        Ok(out)
    };
    if let Some(name) = args.input.strip_prefix("gen:") {
        if let Some(preset) = workloads::presets().into_iter().find(|p| p.name == name) {
            return circuit_only(&workloads::build_preset(&preset));
        }
        if let Some(spec) = workloads::large_preset(name) {
            let file =
                blifio::parse_str(&workloads::hier_to_string(&spec)).map_err(|e| e.to_string())?;
            return render_file_stats(&file, &link, pv);
        }
        return Err(format!("unknown preset `{name}`"));
    }
    if args.input != "-" && (looks_like_kiss(&args.input, "") || probe_kiss(&args.input)?) {
        let text = std::fs::read_to_string(&args.input)
            .map_err(|e| format!("reading `{}`: {e}", args.input))?;
        let stg = workloads::parse_kiss2(&text).map_err(|e| e.to_string())?;
        let c = workloads::synthesize_stg(&stg, enc, "kiss2").map_err(|e| e.to_string())?;
        return circuit_only(&c);
    }
    let file = if args.input == "-" {
        use std::io::Read;
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        blifio::parse_str(&buf).map_err(|e| e.to_string())?
    } else {
        blifio::parse_path(&args.input).map_err(|e| e.to_string())?
    };
    render_file_stats(&file, &link, pv)
}

/// Renders the `--partition-preview` block: the planned FF-boundary
/// partition of `c` into `requested` blocks (0 = auto) at LUT bound `k`,
/// without running the mapper.
fn render_partition_preview(c: &Circuit, requested: usize, k: usize) -> String {
    let blocks = if requested == 0 {
        partition::auto_blocks(c.num_gates())
    } else {
        requested
    };
    let pv = partition::preview(c, blocks, k);
    let mut out = String::new();
    writeln!(
        out,
        "partition preview ({} blocks requested{}):",
        pv.requested_blocks,
        if requested == 0 { ", auto" } else { "" }
    )
    .ok();
    writeln!(
        out,
        "  {} SCC components, {} FF-boundary clusters -> {} blocks",
        pv.components, pv.clusters, pv.blocks
    )
    .ok();
    writeln!(
        out,
        "  block gates: {:?} (imbalance {:.2})",
        pv.block_gates, pv.imbalance
    )
    .ok();
    writeln!(
        out,
        "  cut: {} edges, {} FFs; Φ_est {}, min slack {}, {} contracts",
        pv.cut_edges, pv.cut_ffs, pv.phi_estimate, pv.min_slack, pv.contracts
    )
    .ok();
    out
}

/// The per-model table plus post-flatten totals for a parsed BLIF file;
/// `preview` appends a `--partition-preview` block for the flat circuit.
fn render_file_stats(
    file: &blifio::BlifFile,
    link: &blifio::LinkOptions,
    preview: Option<(usize, usize)>,
) -> Result<String, String> {
    let mut out = netlist::stats::render_model_table(&file.model_counts());
    let flat = blifio::flatten(file, link).map_err(|e| e.to_string())?;
    let stats = netlist::CircuitStats::of(&flat).map_err(|e| e.to_string())?;
    write!(out, "\nflat:   {stats}\n").ok();
    if let Some((p, k)) = preview {
        out.push_str(&render_partition_preview(&flat, p, k));
    }
    Ok(out)
}

/// Parsed `tmfrt explain` command line.
#[derive(Debug, Clone)]
pub struct ExplainArgs {
    /// Input path, `-` for stdin, or `gen:<preset>`.
    pub input: String,
    /// LUT input bound.
    pub k: usize,
    /// One-hot encoding for KISS2 inputs.
    pub onehot: bool,
    /// Print the `turbomap-report/v1` JSON instead of the table.
    pub json: bool,
    /// Run the independent certificate checker on the rendered report
    /// and fail unless the Φ−1 witness verifies.
    pub check: bool,
    /// Also write the report JSON to this path.
    pub out: Option<String>,
    /// Sweep parallelism (1 = serial, 0 = auto); report bytes are
    /// identical for every setting.
    pub sweep_workers: usize,
}

impl ExplainArgs {
    /// Parses raw arguments (after the `explain` word).
    ///
    /// # Errors
    ///
    /// Returns a usage message on malformed input.
    pub fn parse(raw: &[String]) -> Result<ExplainArgs, String> {
        let mut args = ExplainArgs {
            input: String::new(),
            k: 5,
            onehot: false,
            json: false,
            check: false,
            out: None,
            sweep_workers: 1,
        };
        let mut it = raw.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "-k" => {
                    args.k = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| "-k needs a number ≥ 2".to_string())?;
                    if args.k < 2 {
                        return Err("-k must be at least 2".into());
                    }
                }
                "--onehot" => args.onehot = true,
                "--json" => args.json = true,
                "--check" => args.check = true,
                "-o" | "--output" => {
                    args.out = Some(
                        it.next()
                            .ok_or_else(|| "--output needs a path".to_string())?
                            .clone(),
                    );
                }
                "--sweep-workers" => {
                    args.sweep_workers = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| "--sweep-workers needs a count (0 = auto)".to_string())?;
                }
                "-h" | "--help" => return Err(EXPLAIN_USAGE.to_string()),
                other if args.input.is_empty() && !other.starts_with('-') => {
                    args.input = other.to_string();
                }
                other => return Err(format!("unexpected argument `{other}`\n{EXPLAIN_USAGE}")),
            }
        }
        if args.input.is_empty() {
            return Err(EXPLAIN_USAGE.to_string());
        }
        Ok(args)
    }
}

/// Usage text for `tmfrt explain`.
pub const EXPLAIN_USAGE: &str = "\
tmfrt explain — why is Φ optimal? certificate + timing attribution

Maps the circuit with turbomap-frt, then reports (a) a replayable
derivation witness that period Φ−1 has no simple FRT mapping solution
and (b) per-LUT depth/slack, the critical path, label pairs and the
retiming summary.

USAGE: tmfrt explain <input> [-k K] [--json] [--check] [-o r.json]
                     [--onehot] [--sweep-workers N]

  <input>    a .blif file, a .kiss2 file, `-` (BLIF on stdin), or
             gen:<preset>
  -k K       LUT input bound (default 5)
  --json     print the turbomap-report/v1 JSON instead of the table
  --check    replay the rendered report through the independent checker
             (own frt/cone/max-flow arithmetic); exit non-zero unless
             the Φ−1 witness verifies
  -o PATH    also write the report JSON to PATH
  --onehot   one-hot state encoding for KISS2 inputs
  --sweep-workers N
             label-sweep threads (default 1, 0 = all cores); the report
             bytes are identical for every setting";

/// Runs `tmfrt explain`: maps, assembles the report, optionally verifies
/// it with the independent checker, and renders table or JSON.
///
/// # Errors
///
/// Returns a human-readable message on load/mapping errors, and a
/// `certificate check FAILED: …` message when `--check` does not verify.
pub fn run_explain(args: &ExplainArgs) -> Result<String, String> {
    let circuit = load_input(&args.input, args.onehot)?;
    let mut opts = turbomap::Options::with_k(args.k);
    opts.sweep_workers = args.sweep_workers;
    let explained = report::explain(&circuit, opts).map_err(|e| e.to_string())?;
    let json = explained.to_json().render_pretty();
    let mut check_line = None;
    if args.check {
        // Verify the *rendered* bytes: parse back, then replay with the
        // checker's own arithmetic, so the round trip is covered too.
        let parsed = engine::JsonValue::parse(&json)
            .map_err(|e| format!("certificate check FAILED: report does not re-parse: {e}"))?;
        let summary = report::verify(&parsed, &circuit, &explained.result.circuit)
            .map_err(|e| format!("certificate check FAILED: {e}"))?;
        match summary.witness {
            report::WitnessVerdict::Verified {
                steps,
                ref terminal_node,
                terminal_value,
            } => {
                check_line = Some(format!(
                    "checker: witness VERIFIED — {steps} steps replay; {terminal_node} \
                     reaches l^s = {terminal_value} > {}; {} node timings re-derived{}",
                    explained.report.witness.phi_tested,
                    summary.nodes_checked,
                    if summary.cycle_checked {
                        "; critical cycle re-verified"
                    } else {
                        ""
                    }
                ));
            }
            report::WitnessVerdict::Unavailable { reason } => {
                return Err(format!(
                    "certificate check FAILED: no verifiable witness ({reason})"
                ));
            }
        }
    }
    if let Some(path) = &args.out {
        std::fs::write(path, &json).map_err(|e| format!("writing `{path}`: {e}"))?;
    }
    if args.json {
        Ok(json)
    } else {
        let mut out = explained.report.render_table();
        if let Some(line) = check_line {
            out.push_str(&line);
            out.push('\n');
        }
        Ok(out)
    }
}

/// The result of one CLI run.
#[derive(Debug)]
pub struct RunOutcome {
    /// The produced circuit.
    pub circuit: Circuit,
    /// Human-readable summary lines.
    pub report: String,
    /// The rendered `turbomap-report/v1` document, when requested via
    /// [`Args::report`] or [`Args::report_inline`].
    pub report_json: Option<String>,
    /// True when the initial state was lost (general retiming only).
    pub star: bool,
}

/// Runs the selected flow.
///
/// # Errors
///
/// Returns a human-readable message on algorithm failures.
pub fn run(args: &Args, input: &Circuit) -> Result<RunOutcome, String> {
    if (args.report.is_some() || args.report_inline) && args.algorithm != Algorithm::TurboMapFrt {
        return Err("--report is only available with -a turbomap-frt".into());
    }
    if args.partitions.is_some() {
        if args.algorithm != Algorithm::TurboMapFrt {
            return Err("--partitions is only available with -a turbomap-frt".into());
        }
        if args.report.is_some() || args.report_inline {
            return Err(
                "--report is not available with --partitions (the Φ-optimality \
                        certificate is monolithic)"
                    .into(),
            );
        }
    }
    let mut report = String::new();
    let mut report_json: Option<String> = None;
    let stats = netlist::CircuitStats::of(input).map_err(|e| e.to_string())?;
    writeln!(report, "input:  {stats}").ok();

    let source = if args.pushback {
        let (pushed, _, pstats) = retiming::push_registers_backward(input, 32);
        writeln!(
            report,
            "pushback: {} backward moves ({} conflicts, {} unjustifiable)",
            pstats.moves, pstats.conflicts, pstats.unjustifiable
        )
        .ok();
        pushed
    } else {
        input.clone()
    };

    let (circuit, star) = match args.algorithm {
        Algorithm::FlowMapFrt => {
            let prep = turbomap::prepare(&source, args.k).map_err(|e| e.to_string())?;
            let r = flowmap::flowmap_frt(&prep, args.k).map_err(|e| e.to_string())?;
            writeln!(
                report,
                "flowmap-frt: Φ = {}, {} LUTs, {} FFs",
                r.period, r.luts, r.ffs
            )
            .ok();
            (r.circuit, false)
        }
        Algorithm::TurboMapFrt => {
            let mut opts = turbomap::Options::with_k(args.k);
            opts.sweep_workers = args.sweep_workers;
            opts.warm_start = !args.no_warm_start;
            if args.report.is_some() || args.report_inline {
                // The report pipeline wraps the same mapping run, so the
                // circuit comes out of `explain` rather than mapping twice.
                let explained = report::explain(&source, opts).map_err(|e| e.to_string())?;
                let doc = explained.to_json().render_pretty();
                if let Some(path) = &args.report {
                    std::fs::write(path, &doc).map_err(|e| format!("writing `{path}`: {e}"))?;
                    writeln!(report, "report: wrote {path}").ok();
                }
                report_json = Some(doc);
                let r = explained.result;
                writeln!(
                    report,
                    "turbomap-frt: Φ = {}, {} LUTs, {} FFs (initial state guaranteed)",
                    r.period, r.luts, r.ffs
                )
                .ok();
                (r.circuit, false)
            } else if let Some(p) = args.partitions {
                let blocks = if p == 0 {
                    partition::auto_blocks(source.num_gates())
                } else {
                    p
                };
                let mut popts = partition::PartitionOptions::new(args.k, blocks);
                popts.jobs = args.jobs;
                popts.sweep_workers = args.sweep_workers;
                let r = partition::partition_map(&source, &popts).map_err(|e| e.to_string())?;
                let pr = &r.report;
                writeln!(
                    report,
                    "partition: {} blocks (requested {}), {} clusters / {} components, \
                     cut {} edges / {} FFs",
                    pr.blocks,
                    pr.requested_blocks,
                    pr.clusters,
                    pr.components,
                    pr.cut_edges,
                    pr.cut_ffs
                )
                .ok();
                writeln!(
                    report,
                    "partition: Φ_est {}, min slack {}, {}/{} contract violations, \
                     imbalance {:.2}, {} seam FFs restored",
                    pr.phi_estimate,
                    pr.min_slack,
                    pr.contract_violations,
                    pr.contracts,
                    pr.imbalance,
                    pr.stitch.seam_ffs
                )
                .ok();
                for b in &pr.block_outcomes {
                    writeln!(
                        report,
                        "  block {}: {} gates, {} cut FFs -> Φ {}, {} LUTs ({:.1} ms){}",
                        b.name,
                        b.gates,
                        b.cut_ffs,
                        b.phi,
                        b.luts,
                        b.wall.as_secs_f64() * 1e3,
                        if b.passthrough { " [passthrough]" } else { "" }
                    )
                    .ok();
                }
                writeln!(
                    report,
                    "turbomap-frt[partitioned]: Φ = {}, {} LUTs, {} FFs \
                     (initial state guaranteed)",
                    pr.phi, pr.luts, pr.ffs
                )
                .ok();
                (r.circuit, false)
            } else {
                let r = turbomap::turbomap_frt(&source, opts).map_err(|e| e.to_string())?;
                writeln!(
                    report,
                    "turbomap-frt: Φ = {}, {} LUTs, {} FFs (initial state guaranteed)",
                    r.period, r.luts, r.ffs
                )
                .ok();
                (r.circuit, false)
            }
        }
        Algorithm::TurboMap => {
            let r = turbomap::turbomap_general(&source, turbomap::Options::with_k(args.k))
                .map_err(|e| e.to_string())?;
            writeln!(
                report,
                "turbomap: Φ = {}, {} LUTs, {} FFs{}",
                r.period,
                r.luts,
                r.ffs,
                if r.star() {
                    " — ⋆ NO usable equivalent initial state"
                } else {
                    ""
                }
            )
            .ok();
            let star = r.star();
            (r.circuit, star)
        }
        Algorithm::RetimeForward => {
            let r = retiming::retime_min_period_forward(&source).map_err(|e| e.to_string())?;
            writeln!(report, "retime-forward: Φ = {}", r.period).ok();
            (r.circuit, false)
        }
        Algorithm::RetimeGeneral => match retiming::retime_min_period_general(&source) {
            Ok(r) => {
                writeln!(report, "retime-general: Φ = {}", r.period).ok();
                (r.circuit, false)
            }
            Err(e) => {
                return Err(format!(
                    "retime-general failed to compute an initial state: {e} \
                     (this is the NP-hard case the paper avoids)"
                ))
            }
        },
    };

    let circuit = if args.strash {
        let r = netlist::strash(&circuit).map_err(|e| e.to_string())?;
        writeln!(report, "strash: merged {} duplicate gates", r.merged).ok();
        r.circuit
    } else {
        circuit
    };
    let circuit = if args.pack {
        let r = flowmap::pack_luts(&circuit, args.k).map_err(|e| e.to_string())?;
        writeln!(report, "pack: removed {} LUTs", r.packed).ok();
        r.circuit
    } else {
        circuit
    };
    if let Some(n) = args.verify {
        let eq = netlist::random_equiv(input, &circuit, n, 0x7E57)
            .map_err(|e| e.to_string())?
            .is_equivalent();
        writeln!(
            report,
            "verify: {}",
            if eq {
                "equivalent".to_string()
            } else if star {
                "NOT equivalent (expected: the initial state was lost)".to_string()
            } else {
                return Err("verification FAILED on a non-starred result".into());
            }
        )
        .ok();
    }
    let out_stats = netlist::CircuitStats::of(&circuit).map_err(|e| e.to_string())?;
    writeln!(report, "output: {out_stats}").ok();
    Ok(RunOutcome {
        circuit,
        report,
        report_json,
        star,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_defaults() {
        let a = Args::parse(&argv("gen:sand")).unwrap();
        assert_eq!(a.algorithm, Algorithm::TurboMapFrt);
        assert_eq!(a.k, 5);
        assert!(!a.pushback);
    }

    #[test]
    fn parses_all_flags() {
        let a = Args::parse(&argv(
            "in.blif -o out.blif -a turbomap -k 4 --pushback --verify 100 --onehot",
        ))
        .unwrap();
        assert_eq!(a.algorithm, Algorithm::TurboMap);
        assert_eq!(a.k, 4);
        assert!(a.pushback);
        assert_eq!(a.verify, Some(100));
        assert!(a.onehot);
        assert_eq!(a.output.as_deref(), Some("out.blif"));
    }

    #[test]
    fn parses_reuse_knobs() {
        let a = Args::parse(&argv("gen:sand --sweep-workers 4 --no-warm-start")).unwrap();
        assert_eq!(a.sweep_workers, 4);
        assert!(a.no_warm_start);
        let b = Args::parse(&argv("gen:sand --sweep-workers 0")).unwrap();
        assert_eq!(b.sweep_workers, 0);
        assert!(Args::parse(&argv("gen:sand --sweep-workers")).is_err());
        // Defaults: serial sweeps, warm starts on.
        let d = Args::parse(&argv("gen:sand")).unwrap();
        assert_eq!(d.sweep_workers, 1);
        assert!(!d.no_warm_start);
    }

    #[test]
    fn parses_partition_flags() {
        let a = Args::parse(&argv("gen:sand --partitions 4 --jobs 2")).unwrap();
        assert_eq!(a.partitions, Some(4));
        assert_eq!(a.jobs, 2);
        let b = Args::parse(&argv("gen:sand --partitions auto")).unwrap();
        assert_eq!(b.partitions, Some(0));
        assert!(Args::parse(&argv("gen:sand --partitions 0")).is_err());
        assert!(Args::parse(&argv("gen:sand --partitions")).is_err());
        // Default: off, serial block fan-out.
        let d = Args::parse(&argv("gen:sand")).unwrap();
        assert_eq!(d.partitions, None);
        assert_eq!(d.jobs, 0);
    }

    #[test]
    fn partitions_require_turbomap_frt() {
        let args = Args::parse(&argv("gen:dk17 -a turbomap --partitions 2")).unwrap();
        let c = load_circuit(&args).unwrap();
        let e = run(&args, &c).unwrap_err();
        assert!(e.contains("--partitions"));
    }

    #[test]
    fn end_to_end_partitioned_preset() {
        let args = Args::parse(&argv("gen:dk17 --partitions 2 --jobs 2 --verify 256")).unwrap();
        let c = load_circuit(&args).unwrap();
        let out = run(&args, &c).unwrap();
        assert!(out.report.contains("partition:"));
        assert!(out.report.contains("turbomap-frt[partitioned]"));
        assert!(out.report.contains("verify: equivalent"));
    }

    #[test]
    fn stats_partition_preview() {
        let args = StatsArgs::parse(&argv("gen:dk17 --partition-preview 2")).unwrap();
        assert_eq!(args.partition_preview, Some(2));
        let out = run_stats(&args).unwrap();
        assert!(out.contains("partition preview"));
        assert!(out.contains("cut:"));
        let auto = StatsArgs::parse(&argv("gen:dk17 --partition-preview auto -k 4")).unwrap();
        assert_eq!(auto.partition_preview, Some(0));
        assert_eq!(auto.k, 4);
        assert!(run_stats(&auto).unwrap().contains("auto"));
        assert!(StatsArgs::parse(&argv("gen:dk17 --partition-preview -3")).is_err());
    }

    #[test]
    fn map_alias_and_observability_flags() {
        let a = Args::parse(&argv("map in.blif --trace-out t.json -q")).unwrap();
        assert_eq!(a.input, "in.blif");
        assert_eq!(a.trace_out.as_deref(), Some("t.json"));
        assert!(a.quiet);
        // `map` is only consumed in the leading position.
        let b = Args::parse(&argv("map --quiet")).unwrap_err();
        assert!(b.contains("USAGE"));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Args::parse(&argv("")).is_err());
        assert!(Args::parse(&argv("x.blif -k 1")).is_err());
        assert!(Args::parse(&argv("x.blif -a nosuch")).is_err());
        assert!(Args::parse(&argv("x.blif --bogus")).is_err());
    }

    #[test]
    fn end_to_end_on_preset() {
        let args = Args::parse(&argv("gen:dk17 --verify 256")).unwrap();
        let c = load_circuit(&args).unwrap();
        let out = run(&args, &c).unwrap();
        assert!(out.report.contains("turbomap-frt"));
        assert!(out.report.contains("verify: equivalent"));
        assert!(!out.star);
    }

    #[test]
    fn end_to_end_blif_text() {
        let blif = "\
.model t
.inputs a
.outputs z
.names a s z
10 1
01 1
.latch z s 0
.end
";
        let dir = std::env::temp_dir().join("tmfrt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.blif");
        std::fs::write(&path, blif).unwrap();
        let args = Args::parse(&argv(&format!(
            "{} -a flowmap-frt --verify 64",
            path.display()
        )))
        .unwrap();
        let c = load_circuit(&args).unwrap();
        let out = run(&args, &c).unwrap();
        assert!(out.report.contains("flowmap-frt"));
    }

    #[test]
    fn kiss2_input_detected() {
        let kiss = ".i 1\n.o 1\n.s 2\n.r A\n1 A B 1\n- B A 0\n.e\n";
        let dir = std::env::temp_dir().join("tmfrt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.kiss2");
        std::fs::write(&path, kiss).unwrap();
        let args = Args::parse(&argv(&format!("{} --verify 64", path.display()))).unwrap();
        let c = load_circuit(&args).unwrap();
        assert!(c.ff_count_shared() >= 1);
        let out = run(&args, &c).unwrap();
        assert!(out.report.contains("equivalent"));
    }

    #[test]
    fn pack_and_strash_flags() {
        let args = Args::parse(&argv("gen:dk17 --pack --strash --verify 128")).unwrap();
        assert!(args.pack && args.strash);
        let c = load_circuit(&args).unwrap();
        let out = run(&args, &c).unwrap();
        assert!(out.report.contains("pack: removed"));
        assert!(out.report.contains("strash: merged"));
        assert!(out.report.contains("verify: equivalent"));
    }

    const HIER: &str = "\
.model top
.inputs a b
.outputs z
.subckt and2m x=a y=b o=z
.end
.model and2m
.inputs x y
.outputs o
.names x y o
11 1
.end
";

    #[test]
    fn loads_hierarchical_blif() {
        let dir = std::env::temp_dir().join("tmfrt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hier.blif");
        std::fs::write(&path, HIER).unwrap();
        let args = Args::parse(&argv(&format!("{} --verify 32", path.display()))).unwrap();
        let c = load_circuit(&args).unwrap();
        assert_eq!(c.name(), "top");
        assert_eq!(c.num_gates(), 1);
        let out = run(&args, &c).unwrap();
        assert!(out.report.contains("verify: equivalent"));
    }

    #[test]
    fn stats_reports_models_and_flat_totals() {
        let dir = std::env::temp_dir().join("tmfrt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hier_stats.blif");
        std::fs::write(&path, HIER).unwrap();
        let args = StatsArgs::parse(&argv(&path.display().to_string())).unwrap();
        let report = run_stats(&args).unwrap();
        assert!(report.contains("top"), "{report}");
        assert!(report.contains("and2m"), "{report}");
        assert!(report.contains("flat:"), "{report}");
    }

    #[test]
    fn stats_parses_flags() {
        let a = StatsArgs::parse(&argv("x.blif --onehot")).unwrap();
        assert!(a.onehot);
        assert!(StatsArgs::parse(&argv("")).is_err());
        assert!(StatsArgs::parse(&argv("x.blif --bogus")).is_err());
    }

    #[test]
    fn unknown_preset_lists_large_suite() {
        let args = Args::parse(&argv("gen:nosuch")).unwrap();
        let err = load_circuit(&args).unwrap_err();
        assert!(err.contains("hier100k"), "{err}");
        assert!(err.contains("sand"), "{err}");
    }

    #[test]
    fn pushback_flow_runs() {
        let args = Args::parse(&argv("gen:ex2 --pushback --verify 128")).unwrap();
        let c = load_circuit(&args).unwrap();
        let out = run(&args, &c).unwrap();
        assert!(out.report.contains("pushback"));
        assert!(out.report.contains("verify: equivalent"));
    }
}
