//! `tmfrt serve` — a live observability service over the batch engine.
//!
//! Boots the dependency-free [`engine::http`] server and accepts mapping
//! jobs over HTTP: `POST /jobs` with a BLIF body (or a JSON manifest of
//! several sources) enqueues each circuit on a long-lived
//! [`engine::Pool`], exactly as `tmfrt batch` does — panic-isolated,
//! deadline-bounded through [`engine::CancelToken`]s, with per-job
//! telemetry. While a job runs, its counters, current phase and
//! heap-accounting peaks are readable by other threads through the
//! [`engine::telemetry::LiveTelemetry`] mirror, so `GET /jobs/<id>`
//! shows counters- and peak-heap-so-far, `GET /metrics` folds running
//! jobs into the Prometheus exposition (including the process-wide
//! allocator gauges from [`engine::mem`]), and `GET /events` streams
//! job-lifecycle and phase-transition events as Server-Sent Events.
//! With `--trace`, every job also records its spans, and
//! `GET /jobs/<id>/trace` serves the finished job's Chrome-trace JSON
//! (loadable in Perfetto, analyzable offline with `tmfrt profile`).
//!
//! Shutdown is graceful and cooperative: `POST /shutdown` (or tripping
//! the handle's token programmatically) stops the accept loop, cancels
//! every queued and running job through its token, and drains workers.
//!
//! Discipline: nothing is ever written to stdout; all diagnostics are
//! structured JSON lines on stderr through [`engine::log`] (so `-q` and
//! `TMFRT_LOG` control them).

use crate::{load_circuit, run, Args};
use engine::cancel::{self, CancelReason};
use engine::http::{Request, Response, Server, ServerConfig};
use engine::telemetry::{self, Counter, LiveTelemetry, Telemetry, COUNTER_NAMES, PHASE_NAMES};
use engine::{log, trace, CancelToken, JsonValue, Pool, PromWriter};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Usage text for the `serve` subcommand.
pub const SERVE_USAGE: &str = "\
tmfrt serve — live mapping service with /metrics, /jobs and SSE events

USAGE: tmfrt serve [--addr HOST:PORT] [--jobs N] [--timeout-secs S]
                   [--trace] [-a ALGO] [-k K] [--verify N] [--pack]
                   [--strash] [--pushback] [--sweep-workers N]
                   [--partitions K|auto] [--no-warm-start] [-q]

  --addr A          listen address (default 127.0.0.1:7878; port 0 picks
                    an ephemeral port, reported in the startup log line)
  --jobs N          mapping worker threads (default 2)
  --timeout-secs S  default per-job soft deadline
  --trace           record spans per job; GET /jobs/<id>/trace serves the
                    finished job's Chrome-trace JSON
  remaining flags   default flow options for submitted jobs (overridable
                    per request via query parameters)

ENDPOINTS
  POST /jobs        submit a BLIF body (?name=&algorithm=&k=&verify=&
                    sweep_workers=&partition=&timeout_secs=&report=1
                    override defaults; partition=K|auto|off maps the job
                    partition-and-conquer) or a JSON manifest
                    {\"jobs\":[{\"name\":…,\"source\":\"gen:…|path\"|\"blif\":…}]}
                    report=1 (turbomap-frt only) also records a
                    turbomap-report/v1 certificate per job
  GET  /jobs        all jobs (id, state, status, wall)
  GET  /jobs/<id>   one job: phase timers, counters- and peak-heap-so-far
                    while running, final telemetry and report when done
  GET  /jobs/<id>/report  the job's turbomap-report/v1 JSON (requires a
                    finished report=1 job; 404 otherwise)
  GET  /jobs/<id>/trace  the job's Chrome-trace JSON (requires --trace
                    and a finished job; 404 otherwise)
  GET  /metrics     Prometheus text exposition (live + finished jobs)
  GET  /events      Server-Sent Events: job lifecycle + phase transitions
  GET  /healthz     liveness   GET /readyz  readiness
  POST /shutdown    graceful stop: cancels in-flight jobs, drains, exits

Logs are JSON lines on stderr (TMFRT_LOG=error|warn|info|debug|trace|off);
stdout stays empty.";

/// Parsed `serve` arguments.
#[derive(Debug, Clone)]
pub struct ServeArgs {
    /// Listen address.
    pub addr: String,
    /// Mapping worker threads.
    pub jobs: usize,
    /// Default per-job soft deadline.
    pub timeout: Option<Duration>,
    /// Record spans per job and serve them on `/jobs/<id>/trace`.
    pub trace: bool,
    /// Default flow options for submitted jobs.
    pub run: Args,
    /// Quiet: raises the log filter to `error` (unless `TMFRT_LOG` is
    /// set explicitly).
    pub quiet: bool,
}

impl ServeArgs {
    /// Parses `serve` arguments (everything after the subcommand word).
    ///
    /// # Errors
    ///
    /// Returns a usage message on malformed input.
    pub fn parse(raw: &[String]) -> Result<ServeArgs, String> {
        let mut out = ServeArgs {
            addr: "127.0.0.1:7878".to_string(),
            jobs: 2,
            timeout: None,
            trace: false,
            run: Args::parse(&["placeholder".to_string()]).expect("placeholder args parse"),
            quiet: false,
        };
        out.run.input = String::new();
        let mut it = raw.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--addr" => {
                    out.addr = it
                        .next()
                        .ok_or_else(|| "--addr needs HOST:PORT".to_string())?
                        .clone();
                }
                "--jobs" => {
                    out.jobs = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| "--jobs needs a number".to_string())?;
                }
                "--timeout-secs" => {
                    let s: u64 = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| "--timeout-secs needs a number".to_string())?;
                    out.timeout = Some(Duration::from_secs(s));
                }
                "--trace" => out.trace = true,
                "-a" | "--algorithm" => {
                    out.run.algorithm = it
                        .next()
                        .ok_or_else(|| "--algorithm needs a name".to_string())?
                        .parse()?;
                }
                "-k" => {
                    out.run.k = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| "-k needs a number ≥ 2".to_string())?;
                    if out.run.k < 2 {
                        return Err("-k must be at least 2".into());
                    }
                }
                "--verify" => {
                    out.run.verify = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| "--verify needs a vector count".to_string())?,
                    );
                }
                "--pack" => out.run.pack = true,
                "--strash" => out.run.strash = true,
                "--pushback" => out.run.pushback = true,
                "--sweep-workers" => {
                    out.run.sweep_workers = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| "--sweep-workers needs a count (0 = auto)".to_string())?;
                }
                "--partitions" => {
                    let v = it
                        .next()
                        .ok_or_else(|| "--partitions needs a count or `auto`".to_string())?;
                    out.run.partitions = Some(crate::parse_partitions(v)?);
                }
                "--no-warm-start" => out.run.no_warm_start = true,
                "-q" | "--quiet" => out.quiet = true,
                "-h" | "--help" => return Err(SERVE_USAGE.to_string()),
                other => return Err(format!("unexpected argument `{other}`\n{SERVE_USAGE}")),
            }
        }
        Ok(out)
    }
}

/// Job lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
}

impl JobState {
    fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
        }
    }
}

/// One tracked job.
struct JobRecord {
    id: u64,
    name: String,
    state: JobState,
    /// Final status keyword (`ok`/`failed`/`panicked`/`deadline`).
    status: Option<&'static str>,
    /// Error message for non-ok outcomes.
    error: Option<String>,
    /// The run's human-readable report (ok outcomes).
    report: Option<String>,
    /// The run's rendered `turbomap-report/v1` document (`report=1`
    /// submissions, ok outcomes). Served on `GET /jobs/<id>/report`.
    report_json: Option<String>,
    started: Option<Instant>,
    wall: Option<Duration>,
    deadline: Option<Instant>,
    limit: Option<Duration>,
    token: CancelToken,
    live: Arc<LiveTelemetry>,
    final_telemetry: Option<Telemetry>,
    /// Spans harvested from the job thread (`--trace` runs only).
    trace: Option<trace::TraceBuffer>,
    /// Last phase index published to the event stream (monitor state).
    last_phase: Option<&'static str>,
}

/// Bounded in-memory event log backing `GET /events`.
struct EventLog {
    /// `(sequence, rendered JSON)` pairs, oldest first.
    entries: Vec<(u64, String)>,
    next_seq: u64,
}

const EVENT_CAPACITY: usize = 4096;

/// Shared state of one serve instance.
struct ServeState {
    jobs: Mutex<Vec<JobRecord>>,
    events: Mutex<EventLog>,
    /// The mapping pool; `None` once shutdown has drained it.
    pool: Mutex<Option<Pool>>,
    next_id: AtomicU64,
    shutdown: CancelToken,
    defaults: ServeArgs,
    epoch: Instant,
}

impl ServeState {
    fn push_event(&self, kind: &str, mut fields: Vec<(&str, JsonValue)>) {
        let mut pairs = vec![("type", JsonValue::str(kind))];
        pairs.append(&mut fields);
        pairs.push((
            "uptime_micros",
            JsonValue::UInt(self.epoch.elapsed().as_micros() as u64),
        ));
        let rendered = JsonValue::object(pairs).render();
        let mut log = self.events.lock().expect("events poisoned");
        let seq = log.next_seq;
        log.next_seq += 1;
        log.entries.push((seq, rendered));
        if log.entries.len() > EVENT_CAPACITY {
            let excess = log.entries.len() - EVENT_CAPACITY;
            log.entries.drain(..excess);
        }
    }

    /// Events with sequence number ≥ `from`.
    fn events_since(&self, from: u64) -> Vec<(u64, String)> {
        self.events
            .lock()
            .expect("events poisoned")
            .entries
            .iter()
            .filter(|(seq, _)| *seq >= from)
            .cloned()
            .collect()
    }
}

/// A running serve instance: address, shutdown token, join handle.
pub struct ServeHandle {
    /// The bound listen address.
    pub addr: std::net::SocketAddr,
    shutdown: CancelToken,
    thread: std::thread::JoinHandle<()>,
}

impl ServeHandle {
    /// A clone of the shutdown token (`POST /shutdown` trips the same
    /// one).
    pub fn shutdown_token(&self) -> CancelToken {
        self.shutdown.clone()
    }

    /// Requests shutdown and waits for the server to drain and exit.
    pub fn shutdown(self) {
        self.shutdown.cancel();
        let _ = self.thread.join();
    }
}

/// Boots the service on a background thread and returns its handle.
///
/// # Errors
///
/// Returns a message when the listen address cannot be bound.
pub fn start(args: &ServeArgs) -> Result<ServeHandle, String> {
    let server = Server::bind(&args.addr, ServerConfig::default())
        .map_err(|e| format!("binding `{}`: {e}", args.addr))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    let shutdown = server.shutdown_token();
    let state = Arc::new(ServeState {
        jobs: Mutex::new(Vec::new()),
        events: Mutex::new(EventLog {
            entries: Vec::new(),
            next_seq: 0,
        }),
        pool: Mutex::new(Some(Pool::new(args.jobs))),
        next_id: AtomicU64::new(0),
        shutdown: shutdown.clone(),
        defaults: args.clone(),
        epoch: Instant::now(),
    });
    if args.trace {
        trace::set_enabled(true);
    }
    log::info(
        "tmfrt::serve",
        "listening",
        &[
            ("addr", JsonValue::str(addr.to_string())),
            ("workers", JsonValue::UInt(args.jobs.max(1) as u64)),
        ],
    );

    // Monitor thread: enforces job deadlines and publishes phase
    // transitions of running jobs to the event stream.
    let monitor = {
        let state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("tmfrt-serve-monitor".into())
            .spawn(move || monitor_loop(&state))
            .map_err(|e| format!("spawning monitor: {e}"))?
    };

    let handler_state = Arc::clone(&state);
    let thread = std::thread::Builder::new()
        .name("tmfrt-serve".into())
        .spawn(move || {
            let st = Arc::clone(&handler_state);
            let served = server.serve(Arc::new(move |req| route(&st, req)));
            if let Err(e) = served {
                log::error(
                    "tmfrt::serve",
                    "server error",
                    &[("error", JsonValue::str(e.to_string()))],
                );
            }
            // Drain: cancel anything still queued or running, then wait
            // for the pool so no worker outlives the service.
            for job in handler_state.jobs.lock().expect("jobs poisoned").iter() {
                if job.state != JobState::Done {
                    job.token.cancel();
                }
            }
            let pool = handler_state.pool.lock().expect("pool poisoned").take();
            drop(pool); // Pool::drop waits for in-flight jobs.
            let _ = monitor.join();
            log::info("tmfrt::serve", "stopped", &[]);
        })
        .map_err(|e| format!("spawning server thread: {e}"))?;
    Ok(ServeHandle {
        addr,
        shutdown,
        thread,
    })
}

/// Runs the service in the foreground until shutdown.
///
/// # Errors
///
/// Returns a message when the listen address cannot be bound.
pub fn run_serve(args: &ServeArgs) -> Result<(), String> {
    let handle = start(args)?;
    let _ = handle.thread.join();
    Ok(())
}

fn monitor_loop(state: &ServeState) {
    while !state.shutdown.is_cancelled() {
        let mut transitions: Vec<(u64, &'static str)> = Vec::new();
        {
            let mut jobs = state.jobs.lock().expect("jobs poisoned");
            let now = Instant::now();
            for job in jobs.iter_mut() {
                if job.state != JobState::Running {
                    continue;
                }
                if let Some(deadline) = job.deadline {
                    if deadline <= now && !job.token.is_cancelled() {
                        job.token.cancel_deadline();
                        log::warn(
                            "tmfrt::serve",
                            "deadline tripped",
                            &[("job", JsonValue::UInt(job.id))],
                        );
                    }
                }
                let phase = job.live.current_phase().map(|p| PHASE_NAMES[p as usize]);
                if phase != job.last_phase {
                    if let Some(name) = phase {
                        transitions.push((job.id, name));
                    }
                    job.last_phase = phase;
                }
            }
        }
        for (id, phase) in transitions {
            state.push_event(
                "phase",
                vec![
                    ("job", JsonValue::UInt(id)),
                    ("phase", JsonValue::str(phase)),
                ],
            );
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Routes one request.
fn route(state: &Arc<ServeState>, req: Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/readyz") => {
            if state.shutdown.is_cancelled() {
                Response::text(503, "shutting down\n")
            } else {
                Response::text(200, "ready\n")
            }
        }
        ("GET", "/metrics") => Response {
            status: 200,
            content_type: "text/plain; version=0.0.4".into(),
            headers: Vec::new(),
            body: engine::http::Body::Bytes(render_metrics(state).into_bytes()),
        },
        ("GET", "/jobs") => Response::json(200, &jobs_index(state)),
        ("POST", "/jobs") => submit_jobs(state, &req),
        ("GET", path) if path.starts_with("/jobs/") && path.ends_with("/trace") => {
            let id = &path["/jobs/".len()..path.len() - "/trace".len()];
            match id.parse() {
                Ok(id) => job_trace(state, id),
                Err(_) => Response::bad_request("job id must be a number"),
            }
        }
        ("GET", path) if path.starts_with("/jobs/") && path.ends_with("/report") => {
            let id = &path["/jobs/".len()..path.len() - "/report".len()];
            match id.parse() {
                Ok(id) => job_report(state, id),
                Err(_) => Response::bad_request("job id must be a number"),
            }
        }
        ("GET", path) if path.starts_with("/jobs/") => match path["/jobs/".len()..].parse() {
            Ok(id) => match job_detail(state, id) {
                Some(v) => Response::json(200, &v),
                None => Response::not_found(),
            },
            Err(_) => Response::bad_request("job id must be a number"),
        },
        ("GET", "/events") => sse_events(state, &req),
        ("POST", "/shutdown") => {
            log::info("tmfrt::serve", "shutdown requested", &[]);
            for job in state.jobs.lock().expect("jobs poisoned").iter() {
                if job.state != JobState::Done {
                    job.token.cancel();
                }
            }
            state.shutdown.cancel();
            Response::text(200, "shutting down\n")
        }
        ("GET" | "POST", _) => Response::not_found(),
        _ => Response::method_not_allowed(),
    }
}

/// One submission parsed out of a `POST /jobs` request.
struct Submission {
    name: String,
    /// `gen:<preset>` or a file path (mutually exclusive with `blif`).
    source: Option<String>,
    /// Inline BLIF text.
    blif: Option<String>,
}

fn submit_jobs(state: &Arc<ServeState>, req: &Request) -> Response {
    if state.shutdown.is_cancelled() {
        return Response::text(503, "shutting down\n");
    }
    // A submission must declare its body: without Content-Length the
    // request legally has none (RFC 9112 §6.3), and treating it as an
    // empty submission would mask the client's framing bug as a 400.
    if !req.declares_body() {
        return Response::length_required();
    }
    // Per-request overrides of the serve-level defaults.
    let mut run_args = state.defaults.run.clone();
    if let Some(a) = req.query_param("algorithm") {
        match a.parse() {
            Ok(algo) => run_args.algorithm = algo,
            Err(e) => return Response::bad_request(e),
        }
    }
    if let Some(k) = req.query_param("k") {
        match k.parse::<usize>() {
            Ok(k) if k >= 2 => run_args.k = k,
            _ => return Response::bad_request("k must be a number ≥ 2"),
        }
    }
    if let Some(v) = req.query_param("verify") {
        match v.parse::<usize>() {
            Ok(n) => run_args.verify = Some(n),
            Err(_) => return Response::bad_request("verify must be a vector count"),
        }
    }
    if let Some(w) = req.query_param("sweep_workers") {
        match w.parse::<usize>() {
            Ok(n) => run_args.sweep_workers = n,
            Err(_) => return Response::bad_request("sweep_workers must be a count (0 = auto)"),
        }
    }
    if let Some(p) = req.query_param("partition") {
        match p {
            "0" | "off" => run_args.partitions = None,
            _ => match crate::parse_partitions(p) {
                Ok(n) => {
                    if run_args.algorithm != crate::Algorithm::TurboMapFrt {
                        return Response::bad_request(
                            "partition= is only available with turbomap-frt",
                        );
                    }
                    run_args.partitions = Some(n);
                }
                Err(_) => {
                    return Response::bad_request("partition must be a count ≥ 1, `auto`, or 0/off")
                }
            },
        }
    }
    if let Some(r) = req.query_param("report") {
        match r {
            "1" | "true" => {
                if run_args.algorithm != crate::Algorithm::TurboMapFrt {
                    return Response::bad_request("report=1 is only available with turbomap-frt");
                }
                run_args.report_inline = true;
            }
            "0" | "false" => run_args.report_inline = false,
            _ => return Response::bad_request("report must be 0 or 1"),
        }
    }
    let mut limit = state.defaults.timeout;
    if let Some(t) = req.query_param("timeout_secs") {
        match t.parse::<u64>() {
            Ok(s) => limit = Some(Duration::from_secs(s)),
            Err(_) => return Response::bad_request("timeout_secs must be a number"),
        }
    }

    let body = req.body_text();
    let is_manifest = req
        .header("content-type")
        .is_some_and(|t| t.contains("application/json"))
        || body.trim_start().starts_with('{');
    let submissions = if is_manifest {
        match parse_manifest(&body) {
            Ok(s) => s,
            Err(e) => return Response::bad_request(e),
        }
    } else {
        if body.trim().is_empty() {
            return Response::bad_request("empty body: expected BLIF text or a JSON manifest");
        }
        vec![Submission {
            name: req.query_param("name").unwrap_or("circuit").to_string(),
            source: None,
            blif: Some(body),
        }]
    };
    if submissions.is_empty() {
        return Response::bad_request("manifest has no jobs");
    }

    let mut accepted = Vec::new();
    for sub in submissions {
        let id = state.next_id.fetch_add(1, Ordering::Relaxed);
        let token = CancelToken::new();
        let live = Arc::new(LiveTelemetry::new());
        let record = JobRecord {
            id,
            name: sub.name.clone(),
            state: JobState::Queued,
            status: None,
            error: None,
            report: None,
            report_json: None,
            started: None,
            wall: None,
            deadline: None,
            limit,
            token: token.clone(),
            live: Arc::clone(&live),
            final_telemetry: None,
            trace: None,
            last_phase: None,
        };
        state.jobs.lock().expect("jobs poisoned").push(record);
        state.push_event(
            "job",
            vec![
                ("job", JsonValue::UInt(id)),
                ("name", JsonValue::str(sub.name.clone())),
                ("state", JsonValue::str("queued")),
            ],
        );
        log::info(
            "tmfrt::serve",
            "job queued",
            &[
                ("job", JsonValue::UInt(id)),
                ("name", JsonValue::str(sub.name.clone())),
            ],
        );
        let worker_state = Arc::clone(state);
        let worker_args = run_args.clone();
        let sub_name = sub.name.clone();
        let mut pool = state.pool.lock().expect("pool poisoned");
        match pool.as_mut() {
            Some(pool) => {
                pool.spawn(move || execute_job(&worker_state, id, &worker_args, sub, token, live));
            }
            None => return Response::text(503, "shutting down\n"),
        }
        accepted.push(JsonValue::object(vec![
            ("id", JsonValue::UInt(id)),
            ("name", JsonValue::str(sub_name)),
        ]));
    }
    Response::json(
        202,
        &JsonValue::object(vec![("accepted", JsonValue::Array(accepted))]),
    )
}

fn parse_manifest(body: &str) -> Result<Vec<Submission>, String> {
    let doc = JsonValue::parse(body).map_err(|e| format!("manifest: {e}"))?;
    let jobs = doc
        .get("jobs")
        .and_then(|j| j.as_array())
        .ok_or("manifest needs a `jobs` array")?;
    let mut out = Vec::new();
    for (i, job) in jobs.iter().enumerate() {
        let source = job.get("source").and_then(|s| s.as_str()).map(String::from);
        let blif = job.get("blif").and_then(|b| b.as_str()).map(String::from);
        if source.is_none() == blif.is_none() {
            return Err(format!(
                "manifest job {i}: exactly one of `source` or `blif` required"
            ));
        }
        let name = job
            .get("name")
            .and_then(|n| n.as_str())
            .map(String::from)
            .or_else(|| source.clone())
            .unwrap_or_else(|| format!("job{i}"));
        out.push(Submission { name, source, blif });
    }
    Ok(out)
}

/// Runs one job on a pool worker: the same isolation/telemetry protocol
/// as `engine::batch`, but reporting into the live registry.
fn execute_job(
    state: &Arc<ServeState>,
    id: u64,
    run_args: &Args,
    sub: Submission,
    token: CancelToken,
    live: Arc<LiveTelemetry>,
) {
    {
        let mut jobs = state.jobs.lock().expect("jobs poisoned");
        let job = jobs.iter_mut().find(|j| j.id == id).expect("job exists");
        if token.is_cancelled() {
            // Shutdown beat the queue: never started.
            job.state = JobState::Done;
            job.status = Some("failed");
            job.error = Some("cancelled before start".into());
            job.wall = Some(Duration::ZERO);
            return;
        }
        job.state = JobState::Running;
        let now = Instant::now();
        job.started = Some(now);
        job.deadline = job.limit.map(|l| now + l);
    }
    state.push_event(
        "job",
        vec![
            ("job", JsonValue::UInt(id)),
            ("name", JsonValue::str(sub.name.clone())),
            ("state", JsonValue::str("running")),
        ],
    );

    let guard = cancel::install(token.clone());
    telemetry::reset();
    trace::job_start();
    let log_guard = log::with_job(sub.name.clone());
    let mirror_guard = telemetry::install_mirror(Arc::clone(&live));
    let start = Instant::now();
    let mut run_args = run_args.clone();
    let caught = catch_unwind(AssertUnwindSafe(|| {
        let circuit = match &sub.blif {
            Some(text) => blifio::read_circuit_str(text).map_err(|e| e.to_string())?,
            None => {
                run_args.input = sub.source.clone().unwrap_or_default();
                load_circuit(&run_args)?
            }
        };
        run(&run_args, &circuit)
    }));
    let wall = start.elapsed();
    drop(mirror_guard);
    drop(log_guard);
    let final_telemetry = telemetry::take();
    let trace_buffer = trace::take_if_enabled();
    drop(guard);

    let deadline_hit = token.reason() == Some(CancelReason::Deadline);
    type Outcome = (&'static str, Option<String>, Option<String>, Option<String>);
    let (status, error, report, report_json): Outcome = match caught {
        Ok(Ok(outcome)) => ("ok", None, Some(outcome.report), outcome.report_json),
        Ok(Err(_)) if deadline_hit => ("deadline", Some("deadline exceeded".into()), None, None),
        Ok(Err(e)) => ("failed", Some(e), None, None),
        Err(_) if deadline_hit => ("deadline", Some("deadline exceeded".into()), None, None),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            ("panicked", Some(msg), None, None)
        }
    };
    {
        let mut jobs = state.jobs.lock().expect("jobs poisoned");
        let job = jobs.iter_mut().find(|j| j.id == id).expect("job exists");
        job.state = JobState::Done;
        job.status = Some(status);
        job.error = error.clone();
        job.report = report;
        job.report_json = report_json;
        job.wall = Some(wall);
        job.final_telemetry = Some(final_telemetry);
        job.trace = trace_buffer;
    }
    state.push_event(
        "job",
        vec![
            ("job", JsonValue::UInt(id)),
            ("name", JsonValue::str(sub.name.clone())),
            ("state", JsonValue::str("done")),
            ("status", JsonValue::str(status)),
        ],
    );
    log::info(
        "tmfrt::serve",
        "job finished",
        &[
            ("job", JsonValue::UInt(id)),
            ("status", JsonValue::str(status)),
            ("micros", JsonValue::UInt(wall.as_micros() as u64)),
        ],
    );
}

fn jobs_index(state: &ServeState) -> JsonValue {
    let jobs = state.jobs.lock().expect("jobs poisoned");
    let list = jobs
        .iter()
        .map(|j| {
            let mut pairs = vec![
                ("id", JsonValue::UInt(j.id)),
                ("name", JsonValue::str(j.name.clone())),
                ("state", JsonValue::str(j.state.as_str())),
            ];
            if let Some(status) = j.status {
                pairs.push(("status", JsonValue::str(status)));
            }
            if let Some(wall) = j.wall {
                pairs.push(("wall_micros", JsonValue::UInt(wall.as_micros() as u64)));
            }
            JsonValue::object(pairs)
        })
        .collect();
    JsonValue::object(vec![("jobs", JsonValue::Array(list))])
}

fn telemetry_json(
    t: &Telemetry,
    current_phase: Option<&'static str>,
) -> Vec<(&'static str, JsonValue)> {
    let counters = COUNTER_NAMES
        .iter()
        .zip(t.counters.iter())
        .map(|(name, v)| (*name, JsonValue::UInt(*v)))
        .collect();
    let phases = PHASE_NAMES
        .iter()
        .zip(t.phase_nanos.iter())
        .map(|(name, nanos)| (*name, JsonValue::UInt(nanos / 1_000)))
        .collect();
    let mut pairs = vec![
        ("counters", JsonValue::object(counters)),
        ("phase_micros", JsonValue::object(phases)),
    ];
    if !t.mem.is_empty() {
        pairs.push((
            "mem",
            JsonValue::object(vec![
                ("peak_heap_bytes", JsonValue::UInt(t.mem.peak_bytes)),
                ("allocs", JsonValue::UInt(t.mem.allocs)),
                ("alloc_bytes", JsonValue::UInt(t.mem.alloc_bytes)),
            ]),
        ));
    }
    if let Some(phase) = current_phase {
        pairs.push(("phase", JsonValue::str(phase)));
    }
    pairs
}

/// `GET /jobs/<id>/trace`: the finished job's Chrome-trace document.
fn job_trace(state: &ServeState, id: u64) -> Response {
    let jobs = state.jobs.lock().expect("jobs poisoned");
    let Some(j) = jobs.iter().find(|j| j.id == id) else {
        return Response::not_found();
    };
    match &j.trace {
        Some(buffer) => {
            let doc = trace::chrome_trace(buffer, &j.name);
            Response::json(200, &doc)
        }
        None => Response::text(
            404,
            "no trace recorded: start the server with --trace and wait for the job to finish\n",
        ),
    }
}

/// `GET /jobs/<id>/report`: the finished job's `turbomap-report/v1`
/// certificate + attribution document.
fn job_report(state: &ServeState, id: u64) -> Response {
    let jobs = state.jobs.lock().expect("jobs poisoned");
    let Some(j) = jobs.iter().find(|j| j.id == id) else {
        return Response::not_found();
    };
    match &j.report_json {
        Some(doc) => Response {
            status: 200,
            content_type: "application/json".into(),
            headers: Vec::new(),
            body: engine::http::Body::Bytes(doc.clone().into_bytes()),
        },
        None => Response::text(
            404,
            "no report recorded: submit with ?report=1 (turbomap-frt) and wait for the job to \
             finish\n",
        ),
    }
}

fn job_detail(state: &ServeState, id: u64) -> Option<JsonValue> {
    let jobs = state.jobs.lock().expect("jobs poisoned");
    let j = jobs.iter().find(|j| j.id == id)?;
    let mut pairs = vec![
        ("id", JsonValue::UInt(j.id)),
        ("name", JsonValue::str(j.name.clone())),
        ("state", JsonValue::str(j.state.as_str())),
    ];
    if let Some(status) = j.status {
        pairs.push(("status", JsonValue::str(status)));
    }
    if let Some(err) = &j.error {
        pairs.push(("error", JsonValue::str(err.clone())));
    }
    if let Some(report) = &j.report {
        pairs.push(("report", JsonValue::str(report.clone())));
    }
    if j.report_json.is_some() {
        pairs.push(("report_available", JsonValue::Bool(true)));
    }
    if let Some(wall) = j.wall {
        pairs.push(("wall_micros", JsonValue::UInt(wall.as_micros() as u64)));
    } else if let Some(started) = j.started {
        pairs.push((
            "running_micros",
            JsonValue::UInt(started.elapsed().as_micros() as u64),
        ));
    }
    if let Some(limit) = j.limit {
        pairs.push(("timeout_secs", JsonValue::UInt(limit.as_secs())));
    }
    // Process-wide high-water RSS at the time of the query — context for
    // the per-job heap peaks below (the kernel counter is per-process).
    if let Some(kib) = engine::mem::peak_rss_kib() {
        pairs.push(("process_peak_rss_kib", JsonValue::UInt(kib)));
    }
    // Dropped trace events are an explicit top-level field: a non-zero
    // value means `/jobs/<id>/trace` is incomplete.
    if let Some(buffer) = &j.trace {
        pairs.push(("trace_dropped_events", JsonValue::UInt(buffer.dropped)));
    }
    // Telemetry: the final snapshot once done, counters-so-far through
    // the live mirror while running. The two headline efficiency
    // counters also surface as explicit fields so dashboards need not
    // dig through the counters object.
    let headline = |pairs: &mut Vec<(&'static str, JsonValue)>, t: &Telemetry| {
        pairs.push((
            "sweeps_saved",
            JsonValue::UInt(t.counters[Counter::SweepsSaved as usize]),
        ));
        pairs.push((
            "frt_capped",
            JsonValue::UInt(t.counters[Counter::FrtCapped as usize]),
        ));
    };
    match (&j.final_telemetry, j.state) {
        (Some(t), _) => {
            headline(&mut pairs, t);
            pairs.extend(telemetry_json(t, None));
        }
        (None, JobState::Running) => {
            let live = j.live.snapshot();
            let phase = j.live.current_phase().map(|p| PHASE_NAMES[p as usize]);
            headline(&mut pairs, &live);
            pairs.extend(telemetry_json(&live, phase));
        }
        _ => {}
    }
    Some(JsonValue::object(pairs))
}

/// Renders the live Prometheus exposition: finished-job outcomes plus
/// in-flight gauges, with the shared telemetry families over finished
/// telemetry merged with live snapshots of running jobs.
fn render_metrics(state: &ServeState) -> String {
    let jobs = state.jobs.lock().expect("jobs poisoned");
    let mut status_counts = [0u64; engine::prom::JOB_STATUSES.len()];
    let mut queued = 0u64;
    let mut running = 0u64;
    let mut wall_total = 0.0f64;
    let mut trace_dropped = 0u64;
    let mut agg = Telemetry::default();
    for j in jobs.iter() {
        if let Some(buffer) = &j.trace {
            trace_dropped += buffer.dropped;
        }
        match j.state {
            JobState::Queued => queued += 1,
            JobState::Running => agg.merge(&j.live.snapshot()),
            JobState::Done => {}
        }
        if j.state == JobState::Running {
            running += 1;
        }
        if let Some(status) = j.status {
            if let Some(i) = engine::prom::JOB_STATUSES.iter().position(|s| *s == status) {
                status_counts[i] += 1;
            }
        }
        if let Some(wall) = j.wall {
            wall_total += wall.as_secs_f64();
        }
        if let Some(t) = &j.final_telemetry {
            agg.merge(t);
        }
    }
    drop(jobs);

    let mut w = PromWriter::new();
    w.family(
        "tmfrt_jobs",
        engine::prom::MetricKind::Counter,
        "Finished jobs by outcome status.",
    );
    for (i, status) in engine::prom::JOB_STATUSES.iter().enumerate() {
        w.sample_u64("tmfrt_jobs", &[("status", status)], status_counts[i]);
    }
    w.family(
        "tmfrt_jobs_inflight",
        engine::prom::MetricKind::Gauge,
        "Jobs currently queued or running.",
    );
    w.sample_u64("tmfrt_jobs_inflight", &[("state", "queued")], queued);
    w.sample_u64("tmfrt_jobs_inflight", &[("state", "running")], running);
    w.family(
        "tmfrt_job_wall_seconds",
        engine::prom::MetricKind::Counter,
        "Total wall-clock seconds spent by finished jobs.",
    );
    w.sample("tmfrt_job_wall_seconds", &[], wall_total);
    // Observability health + headline efficiency counters as dedicated
    // families (they also appear inside tmfrt_events, but dashboards
    // alert on these three specifically).
    w.family(
        "tmfrt_trace_dropped_events",
        engine::prom::MetricKind::Counter,
        "Trace ring-buffer events dropped across recorded jobs (non-zero = incomplete traces).",
    );
    w.sample_u64("tmfrt_trace_dropped_events", &[], trace_dropped);
    w.family(
        "tmfrt_sweeps_saved_total",
        engine::prom::MetricKind::Counter,
        "Label sweeps skipped by warm-start seeding across all jobs.",
    );
    w.sample_u64(
        "tmfrt_sweeps_saved_total",
        &[],
        agg.counters[Counter::SweepsSaved as usize],
    );
    w.family(
        "tmfrt_frt_capped_total",
        engine::prom::MetricKind::Counter,
        "FRT relocation-bound cap hits across all jobs.",
    );
    w.sample_u64(
        "tmfrt_frt_capped_total",
        &[],
        agg.counters[Counter::FrtCapped as usize],
    );
    // Process-wide allocator ledger (live when the counting allocator is
    // installed and enabled; zeros otherwise) and the kernel RSS probes.
    let g = engine::mem::global_stats();
    w.family(
        "tmfrt_process_heap_live_bytes",
        engine::prom::MetricKind::Gauge,
        "Live heap bytes across the whole process (counting allocator).",
    );
    w.sample_u64("tmfrt_process_heap_live_bytes", &[], g.live_bytes);
    w.family(
        "tmfrt_process_heap_peak_bytes",
        engine::prom::MetricKind::Gauge,
        "Peak live heap bytes across the whole process (counting allocator).",
    );
    w.sample_u64("tmfrt_process_heap_peak_bytes", &[], g.peak_bytes);
    w.family(
        "tmfrt_process_rss_kib",
        engine::prom::MetricKind::Gauge,
        "Resident set size in KiB (current and VmHWM peak).",
    );
    w.sample_u64(
        "tmfrt_process_rss_kib",
        &[("kind", "current")],
        engine::mem::current_rss_kib().unwrap_or(0),
    );
    w.sample_u64(
        "tmfrt_process_rss_kib",
        &[("kind", "peak")],
        engine::mem::peak_rss_kib().unwrap_or(0),
    );
    engine::prom::write_telemetry_families(&mut w, &agg);
    w.finish()
}

/// `GET /events`: streams the event log as Server-Sent Events, starting
/// at `?since=<seq>` (default: only new events), until the client
/// disconnects or the server shuts down.
fn sse_events(state: &Arc<ServeState>, req: &Request) -> Response {
    let state = Arc::clone(state);
    let mut cursor = match req.query_param("since") {
        Some(s) => match s.parse() {
            Ok(n) => n,
            Err(_) => return Response::bad_request("since must be a sequence number"),
        },
        None => state.events.lock().expect("events poisoned").next_seq,
    };
    Response::stream("text/event-stream", move |w| {
        let _ = w.write_all(b": tmfrt serve event stream\n\n");
        let _ = w.flush();
        let mut idle_ticks = 0u32;
        loop {
            let batch = state.events_since(cursor);
            for (seq, data) in &batch {
                cursor = seq + 1;
                if write!(w, "id: {seq}\ndata: {data}\n\n").is_err() {
                    return;
                }
            }
            if !batch.is_empty() {
                idle_ticks = 0;
                if w.flush().is_err() {
                    return;
                }
            } else {
                // SSE comment-line keepalive roughly once per second of
                // idle polling: ignored by clients, but keeps proxies
                // and kept-alive sockets from timing the stream out —
                // and detects disconnected clients between events.
                idle_ticks += 1;
                if idle_ticks >= 40 {
                    idle_ticks = 0;
                    if w.write_all(b": keepalive\n\n").is_err() || w.flush().is_err() {
                        return;
                    }
                }
            }
            if state.shutdown.is_cancelled() {
                let _ = w.write_all(b"event: shutdown\ndata: {}\n\n");
                let _ = w.flush();
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_serve_flags() {
        let a = ServeArgs::parse(&argv(
            "--addr 0.0.0.0:9000 --jobs 4 --timeout-secs 60 -a turbomap -k 4 --verify 64 \
             --sweep-workers 3 --no-warm-start -q",
        ))
        .unwrap();
        assert_eq!(a.addr, "0.0.0.0:9000");
        assert_eq!(a.jobs, 4);
        assert_eq!(a.timeout, Some(Duration::from_secs(60)));
        assert_eq!(a.run.algorithm, crate::Algorithm::TurboMap);
        assert_eq!(a.run.k, 4);
        assert_eq!(a.run.verify, Some(64));
        assert_eq!(a.run.sweep_workers, 3);
        assert!(a.run.no_warm_start);
        assert!(a.quiet);
    }

    #[test]
    fn parses_serve_partitions() {
        let a = ServeArgs::parse(&argv("--partitions auto")).unwrap();
        assert_eq!(a.run.partitions, Some(0));
        let b = ServeArgs::parse(&argv("--partitions 4")).unwrap();
        assert_eq!(b.run.partitions, Some(4));
        assert!(ServeArgs::parse(&argv("--partitions 0")).is_err());
        assert_eq!(ServeArgs::parse(&[]).unwrap().run.partitions, None);
    }

    #[test]
    fn serve_defaults_and_rejects() {
        let a = ServeArgs::parse(&[]).unwrap();
        assert_eq!(a.addr, "127.0.0.1:7878");
        assert_eq!(a.jobs, 2);
        assert!(ServeArgs::parse(&argv("--bogus")).is_err());
        assert!(ServeArgs::parse(&argv("--addr")).is_err());
        let help = ServeArgs::parse(&argv("--help")).unwrap_err();
        assert!(help.contains("ENDPOINTS"));
    }

    #[test]
    fn manifest_parses_and_validates() {
        let subs = parse_manifest(
            r#"{"jobs":[{"name":"a","source":"gen:dk17"},{"blif":".model x\n.end\n"}]}"#,
        )
        .unwrap();
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0].name, "a");
        assert_eq!(subs[0].source.as_deref(), Some("gen:dk17"));
        assert_eq!(subs[1].name, "job1");
        assert!(subs[1].blif.is_some());
        assert!(parse_manifest("{}").is_err());
        assert!(parse_manifest(r#"{"jobs":[{"name":"both","source":"x","blif":"y"}]}"#).is_err());
        assert!(parse_manifest(r#"{"jobs":[{"name":"neither"}]}"#).is_err());
    }
}
