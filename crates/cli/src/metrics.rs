//! Prometheus text exposition for batch runs (`--metrics-out`).
//!
//! Thin re-export: the renderer lives in [`engine::prom`] (shared with
//! `tmfrt serve`'s `/metrics` endpoint), so the CLI no longer carries
//! its own copy of the exposition writer.

use engine::JobReport;

/// Renders the batch reports as Prometheus text exposition (0.0.4).
/// Delegates to [`engine::prom::render_job_metrics`].
pub fn render_metrics<T>(reports: &[JobReport<T>]) -> String {
    engine::prom::render_job_metrics(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::prom::validate_exposition;
    use engine::telemetry::Telemetry;
    use engine::JobOutcome;
    use std::time::Duration;

    #[test]
    fn wrapper_matches_engine_renderer() {
        let reports = vec![JobReport {
            name: "a".into(),
            outcome: JobOutcome::Completed(()),
            wall: Duration::from_millis(250),
            telemetry: Telemetry::default(),
            trace: None,
        }];
        let text = render_metrics(&reports);
        assert_eq!(text, engine::prom::render_job_metrics(&reports));
        validate_exposition(&text).expect("wrapper output must validate");
        assert!(text.contains("tmfrt_jobs{status=\"ok\"} 1\n"));
    }
}
