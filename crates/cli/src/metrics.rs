//! Prometheus text exposition for batch runs (`--metrics-out`).
//!
//! One scrape-ready snapshot per batch: job outcomes, total wall time,
//! per-phase CPU seconds, the algorithmic counters, and quantiles of the
//! streaming histograms — everything aggregated across the batch's
//! per-job telemetry deltas. The output is deterministic for a given set
//! of reports (families and samples in fixed order) and always passes
//! [`engine::prom::validate_exposition`].

use engine::hist::HIST_NAMES;
use engine::prom::MetricKind;
use engine::telemetry::{Telemetry, COUNTER_NAMES, PHASE_NAMES};
use engine::{JobReport, PromWriter};

/// Renders the batch reports as Prometheus text exposition (0.0.4).
pub fn render_metrics<T>(reports: &[JobReport<T>]) -> String {
    let mut agg = Telemetry::default();
    for r in reports {
        agg.merge(&r.telemetry);
    }

    let mut w = PromWriter::new();

    w.family(
        "tmfrt_jobs",
        MetricKind::Counter,
        "Batch jobs by final status.",
    );
    for status in ["ok", "failed", "panicked", "deadline"] {
        let n = reports
            .iter()
            .filter(|r| r.outcome.status() == status)
            .count();
        w.sample_u64("tmfrt_jobs", &[("status", status)], n as u64);
    }

    w.family(
        "tmfrt_job_wall_seconds",
        MetricKind::Counter,
        "Wall-clock seconds summed over all jobs.",
    );
    w.sample(
        "tmfrt_job_wall_seconds",
        &[],
        reports.iter().map(|r| r.wall.as_secs_f64()).sum(),
    );

    w.family(
        "tmfrt_phase_seconds",
        MetricKind::Counter,
        "CPU seconds per pipeline phase, summed over all jobs.",
    );
    for (i, phase) in PHASE_NAMES.iter().enumerate() {
        w.sample(
            "tmfrt_phase_seconds",
            &[("phase", phase)],
            agg.phase_nanos[i] as f64 / 1e9,
        );
    }

    w.family(
        "tmfrt_events",
        MetricKind::Counter,
        "Algorithmic counters summed over all jobs.",
    );
    for (i, counter) in COUNTER_NAMES.iter().enumerate() {
        w.sample_u64("tmfrt_events", &[("counter", counter)], agg.counters[i]);
    }

    // One gauge family per non-empty histogram: quantile samples plus
    // explicit _count/_sum counters (summary-style naming without
    // claiming the summary type, which the writer does not model).
    for (i, hist_name) in HIST_NAMES.iter().enumerate() {
        let h = &agg.hists[i];
        if h.is_empty() {
            continue;
        }
        let name = format!("tmfrt_{hist_name}");
        w.family(
            &name,
            MetricKind::Gauge,
            "Upper bound of the log2 bucket holding the quantile.",
        );
        for q in ["0.5", "0.9", "0.99"] {
            let v = h.quantile(q.parse().unwrap()).unwrap_or(0);
            w.sample_u64(&name, &[("quantile", q)], v);
        }
        let count = format!("{name}_count");
        w.family(&count, MetricKind::Counter, "Samples recorded.");
        w.sample_u64(&count, &[], h.count);
        let sum = format!("{name}_sum");
        w.family(&sum, MetricKind::Counter, "Sum of recorded values.");
        w.sample_u64(&sum, &[], h.sum);
    }

    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::hist::Metric;
    use engine::prom::validate_exposition;
    use engine::JobOutcome;
    use std::time::Duration;

    fn report(name: &str, outcome: JobOutcome<()>) -> JobReport<()> {
        let mut t = Telemetry::default();
        t.counters[0] = 10;
        t.phase_nanos[0] = 250_000_000;
        for v in [2u64, 3, 5, 9] {
            t.hists[Metric::CutSize as usize].record(v);
        }
        JobReport {
            name: name.into(),
            outcome,
            wall: Duration::from_millis(500),
            telemetry: t,
            trace: None,
        }
    }

    #[test]
    fn exposition_validates_and_aggregates() {
        let reports = vec![
            report("a", JobOutcome::Completed(())),
            report("b", JobOutcome::Completed(())),
            report("c", JobOutcome::Panicked("boom".into())),
        ];
        let text = render_metrics(&reports);
        validate_exposition(&text).expect("metrics must be valid exposition");
        assert!(text.contains("tmfrt_jobs{status=\"ok\"} 2\n"));
        assert!(text.contains("tmfrt_jobs{status=\"panicked\"} 1\n"));
        assert!(text.contains("tmfrt_jobs{status=\"deadline\"} 0\n"));
        assert!(text.contains("tmfrt_job_wall_seconds 1.5\n"));
        assert!(text.contains("tmfrt_events{counter=\"flow_augmentations\"} 30\n"));
        assert!(text.contains("tmfrt_phase_seconds{phase=\"label\"} 0.75\n"));
        // 12 merged samples of 2,3,5,9: p50 lands in bucket [2,3].
        assert!(text.contains("tmfrt_cut_size{quantile=\"0.5\"} 3\n"));
        assert!(text.contains("tmfrt_cut_size_count 12\n"));
        assert!(text.contains("tmfrt_cut_size_sum 57\n"));
        // Histograms never recorded stay out of the exposition.
        assert!(!text.contains("tmfrt_span_nanos"));
    }

    #[test]
    fn empty_batch_still_validates() {
        let text = render_metrics::<()>(&[]);
        validate_exposition(&text).expect("empty exposition must validate");
        assert!(text.contains("tmfrt_jobs{status=\"ok\"} 0\n"));
    }
}
