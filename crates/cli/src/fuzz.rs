//! `tmfrt fuzz` — differential fuzzing of the mapper/retimer pipeline.
//!
//! Thin argument layer over [`fuzz::run_campaign`]: generates seeded
//! cases, judges each with the differential oracle (Φ ordering across
//! the three flows, sequential equivalence, initial-state guarantees,
//! byte-determinism), shrinks failures and archives repros under the
//! corpus directory. Progress and the summary go to stderr; stdout
//! stays empty.

use fuzz::{run_campaign, CampaignConfig, CampaignReport};
use std::path::PathBuf;
use std::time::Duration;

/// Usage text for the `fuzz` subcommand.
pub const FUZZ_USAGE: &str = "\
tmfrt fuzz — differential fuzzing of the mapping/retiming flows

USAGE: tmfrt fuzz [--seed N | --seed A..=B] [--cases N] [--jobs N]
                  [--timeout-secs S] [-k K] [--max-gates N]
                  [--max-mutations N] [--equiv-vectors N] [--equiv-seed N]
                  [--corpus DIR] [--no-shrink] [--shrink-budget N]
                  [--certificates] [--partitions N] [-q]

  --seed N | A..=B  campaign seed, or an inclusive seed range; each seed
                    contributes --cases cases (default 1)
  --cases N         cases per seed (default 100)
  --jobs N          worker threads (default 1, 0 = all cores)
  --timeout-secs S  per-case soft deadline (default 60)
  -k K              LUT input bound the oracle maps with (default 4)
  --max-gates N     generator gate bound (default 120)
  --max-mutations N generator mutation bound per case (default 12)
  --equiv-vectors N random vectors per equivalence check (default 64)
  --equiv-seed N    seed of the equivalence-check input sequences
  --corpus DIR      repro directory for failing cases (default fuzz/corpus)
  --no-shrink       archive failing cases unminimized
  --shrink-budget N oracle evaluations the shrinker may spend (default 160)
  --certificates    per case, extract a turbomap-report/v1 Φ-optimality
                    certificate and replay it through the independent
                    checker (CheckKind certificate_check)
  --partitions N    per case, also map partition-and-conquer with N ≥ 2
                    blocks and judge the stitched result: equivalence to
                    the source and the Φ-gap bound — it can never beat
                    the monolithic optimum (CheckKind partition_check)
  -q, --quiet       suppress progress logs (the summary still prints)

Every case is a pure function of (seed, config): a repro manifest's
`case_seed` regenerates the exact circuit. Exit status: 0 clean, 1 when
any oracle violation (or stray panic) was found, 2 on usage errors.";

/// Parsed `fuzz` subcommand arguments.
#[derive(Debug, Clone)]
pub struct FuzzArgs {
    /// The campaign configuration to run.
    pub campaign: CampaignConfig,
    /// Suppress progress logs on stderr.
    pub quiet: bool,
}

/// Parses `--seed` values: a single integer or an inclusive `A..=B` range.
fn parse_seeds(spec: &str) -> Result<Vec<u64>, String> {
    if let Some((a, b)) = spec.split_once("..=") {
        let lo: u64 = a
            .trim()
            .parse()
            .map_err(|_| format!("bad seed range start `{a}`"))?;
        let hi: u64 = b
            .trim()
            .parse()
            .map_err(|_| format!("bad seed range end `{b}`"))?;
        if hi < lo {
            return Err(format!("empty seed range `{spec}`"));
        }
        if hi - lo >= 10_000 {
            return Err(format!("seed range `{spec}` is unreasonably large"));
        }
        Ok((lo..=hi).collect())
    } else {
        spec.trim()
            .parse()
            .map(|s| vec![s])
            .map_err(|_| format!("bad seed `{spec}` (expected N or A..=B)"))
    }
}

impl FuzzArgs {
    /// Parses `fuzz` arguments (everything after the subcommand word).
    ///
    /// # Errors
    ///
    /// Returns a usage message on malformed input.
    pub fn parse(raw: &[String]) -> Result<FuzzArgs, String> {
        let mut out = FuzzArgs {
            campaign: CampaignConfig {
                cases_per_seed: 100,
                ..CampaignConfig::default()
            },
            quiet: false,
        };
        let mut it = raw.iter();
        let num = |it: &mut std::slice::Iter<String>, flag: &str| -> Result<usize, String> {
            it.next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("{flag} needs a number"))
        };
        while let Some(a) = it.next() {
            match a.as_str() {
                "--seed" => {
                    let spec = it
                        .next()
                        .ok_or_else(|| "--seed needs a value".to_string())?;
                    out.campaign.seeds = parse_seeds(spec)?;
                }
                "--cases" => out.campaign.cases_per_seed = num(&mut it, "--cases")?,
                "--jobs" => out.campaign.jobs = num(&mut it, "--jobs")?,
                "--timeout-secs" => {
                    let s = num(&mut it, "--timeout-secs")?;
                    out.campaign.timeout = if s == 0 {
                        None
                    } else {
                        Some(Duration::from_secs(s as u64))
                    };
                }
                "-k" => {
                    out.campaign.k = num(&mut it, "-k")?;
                    if out.campaign.k < 2 {
                        return Err("-k must be at least 2".into());
                    }
                }
                "--max-gates" => out.campaign.max_gates = num(&mut it, "--max-gates")?,
                "--max-mutations" => out.campaign.max_mutations = num(&mut it, "--max-mutations")?,
                "--equiv-vectors" => out.campaign.equiv_vectors = num(&mut it, "--equiv-vectors")?,
                "--equiv-seed" => {
                    out.campaign.equiv_seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| "--equiv-seed needs a number".to_string())?;
                }
                "--corpus" => {
                    out.campaign.corpus_dir = Some(PathBuf::from(
                        it.next()
                            .ok_or_else(|| "--corpus needs a path".to_string())?,
                    ));
                }
                "--no-shrink" => out.campaign.shrink = false,
                "--certificates" => out.campaign.certificates = true,
                "--partitions" => {
                    out.campaign.partitions = num(&mut it, "--partitions")?;
                    if out.campaign.partitions < 2 {
                        return Err("--partitions needs a block count of at least 2".into());
                    }
                }
                "--shrink-budget" => out.campaign.shrink_budget = num(&mut it, "--shrink-budget")?,
                "-q" | "--quiet" => out.quiet = true,
                "-h" | "--help" => return Err(FUZZ_USAGE.to_string()),
                other => return Err(format!("unexpected argument `{other}`\n{FUZZ_USAGE}")),
            }
        }
        Ok(out)
    }
}

/// Runs the campaign and prints the human summary to stderr.
pub fn run_fuzz(args: &FuzzArgs) -> CampaignReport {
    let report = run_campaign(&args.campaign);
    for f in &report.failures {
        let kinds: Vec<&str> = f.violations.iter().map(|v| v.kind.name()).collect();
        eprintln!(
            "FAIL {}: {} ({} gates, {} FFs){}",
            f.name,
            kinds.join(", "),
            f.gates,
            f.ffs,
            match &f.corpus_path {
                Some(p) => format!(" → {}", p.display()),
                None => String::new(),
            }
        );
    }
    for (name, err) in &report.failed_jobs {
        eprintln!("ERROR {name}: {err}");
    }
    eprintln!(
        "fuzz: {}/{} cases passed, {} violation(s), {} over deadline, {} panicked",
        report.passed,
        report.total,
        report.failures.len(),
        report.deadline,
        report.panicked
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_defaults() {
        let a = FuzzArgs::parse(&argv("")).unwrap();
        assert_eq!(a.campaign.seeds, vec![1]);
        assert_eq!(a.campaign.cases_per_seed, 100);
        assert_eq!(a.campaign.k, 4);
        assert!(a.campaign.shrink);
        assert!(!a.campaign.certificates);
        assert_eq!(
            a.campaign.corpus_dir.as_deref(),
            Some(std::path::Path::new("fuzz/corpus"))
        );
    }

    #[test]
    fn parses_seed_forms() {
        assert_eq!(
            FuzzArgs::parse(&argv("--seed 7")).unwrap().campaign.seeds,
            vec![7]
        );
        assert_eq!(
            FuzzArgs::parse(&argv("--seed 1..=5"))
                .unwrap()
                .campaign
                .seeds,
            vec![1, 2, 3, 4, 5]
        );
        assert!(FuzzArgs::parse(&argv("--seed 5..=1")).is_err());
        assert!(FuzzArgs::parse(&argv("--seed x")).is_err());
    }

    #[test]
    fn parses_all_knobs() {
        let a = FuzzArgs::parse(&argv(
            "--seed 2..=3 --cases 10 --jobs 4 --timeout-secs 30 -k 5 \
             --max-gates 80 --max-mutations 6 --equiv-vectors 32 \
             --equiv-seed 99 --corpus /tmp/c --no-shrink --shrink-budget 40 \
             --certificates --partitions 2 -q",
        ))
        .unwrap();
        assert_eq!(a.campaign.seeds, vec![2, 3]);
        assert_eq!(a.campaign.cases_per_seed, 10);
        assert_eq!(a.campaign.jobs, 4);
        assert_eq!(a.campaign.timeout, Some(Duration::from_secs(30)));
        assert_eq!(a.campaign.k, 5);
        assert_eq!(a.campaign.max_gates, 80);
        assert_eq!(a.campaign.max_mutations, 6);
        assert_eq!(a.campaign.equiv_vectors, 32);
        assert_eq!(a.campaign.equiv_seed, 99);
        assert_eq!(
            a.campaign.corpus_dir.as_deref(),
            Some(std::path::Path::new("/tmp/c"))
        );
        assert!(!a.campaign.shrink);
        assert_eq!(a.campaign.shrink_budget, 40);
        assert!(a.campaign.certificates);
        assert_eq!(a.campaign.partitions, 2);
        assert!(a.quiet);
    }

    #[test]
    fn timeout_zero_disables_deadline() {
        let a = FuzzArgs::parse(&argv("--timeout-secs 0")).unwrap();
        assert_eq!(a.campaign.timeout, None);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(FuzzArgs::parse(&argv("--bogus")).is_err());
        assert!(FuzzArgs::parse(&argv("-k 1")).is_err());
        assert!(FuzzArgs::parse(&argv("--partitions 1")).is_err());
        assert!(FuzzArgs::parse(&argv("--cases")).is_err());
        let help = FuzzArgs::parse(&argv("--help")).unwrap_err();
        assert!(help.contains("tmfrt fuzz"));
    }
}
