//! The `tmfrt profile` subcommand: offline Chrome-trace analysis.
//!
//! Wraps [`engine::profile`] for the command line. Inputs are trace
//! files produced anywhere in the repo — `tmfrt map --trace-out`,
//! `table1 --trace-dir`, the serve `/jobs/<id>/trace` endpoint — given
//! as file paths or directories (a directory contributes every
//! `*.trace.json` file inside it, sorted, so multi-circuit trace dirs
//! aggregate deterministically).
//!
//! Stream discipline matches the rest of `tmfrt`: the report goes to
//! **stdout** only; diagnostics (files read, folded-stack writes,
//! errors) are structured [`engine::log`] events on stderr, silenced by
//! `-q`.
//!
//! Modes:
//!
//! * `tmfrt profile <PATH>...` — self/total per-span report;
//! * `--folded FILE` — additionally write folded stacks
//!   (`flamegraph.pl` / speedscope input) to `FILE`;
//! * `tmfrt profile --diff <BASE> <CAND>` — phase-attributed
//!   differential: per-span self-time deltas plus a `top regression:`
//!   trailer naming the span that got slowest.

use engine::log;
use engine::profile::{diff, render_diff, Profile};
use engine::JsonValue;
use std::path::{Path, PathBuf};

/// Parsed `tmfrt profile` command line.
#[derive(Debug, Clone, Default)]
pub struct ProfileArgs {
    /// Trace files or directories to aggregate (report mode).
    pub inputs: Vec<String>,
    /// `--diff BASE CAND`: compare two traces/directories instead.
    pub diff: Option<(String, String)>,
    /// `--folded FILE`: also write folded stacks here (report mode).
    pub folded_out: Option<String>,
    /// Suppress diagnostics on stderr.
    pub quiet: bool,
}

impl ProfileArgs {
    /// Parses the arguments after `profile`.
    ///
    /// # Errors
    ///
    /// Returns a usage message on unknown flags, missing operands, or
    /// mixing `--diff` with extra inputs.
    pub fn parse(raw: &[String]) -> Result<ProfileArgs, String> {
        let usage = "usage: tmfrt profile <trace.json|dir>... [--folded FILE] [-q]\n\
                            tmfrt profile --diff <base> <cand> [-q]";
        let mut args = ProfileArgs::default();
        let mut it = raw.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--diff" => {
                    let base = it.next().ok_or(usage)?.clone();
                    let cand = it.next().ok_or(usage)?.clone();
                    args.diff = Some((base, cand));
                }
                "--folded" => {
                    args.folded_out = Some(it.next().ok_or(usage)?.clone());
                }
                "-q" | "--quiet" => args.quiet = true,
                "-h" | "--help" => return Err(usage.to_string()),
                other if !other.starts_with('-') => args.inputs.push(other.to_string()),
                other => return Err(format!("unknown flag `{other}`\n{usage}")),
            }
        }
        match (&args.diff, args.inputs.is_empty()) {
            (None, true) => Err(usage.to_string()),
            (Some(_), false) => Err(format!("--diff takes exactly two operands\n{usage}")),
            _ => {
                if args.diff.is_some() && args.folded_out.is_some() {
                    return Err(format!("--folded is not available with --diff\n{usage}"));
                }
                Ok(args)
            }
        }
    }
}

/// Expands one operand into trace file paths: a file stands for itself,
/// a directory for its `*.trace.json` files sorted by name.
fn trace_files(operand: &str) -> Result<Vec<PathBuf>, String> {
    let path = Path::new(operand);
    if path.is_dir() {
        let mut files: Vec<PathBuf> = std::fs::read_dir(path)
            .map_err(|e| format!("reading directory `{operand}`: {e}"))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.ends_with(".trace.json"))
            })
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(format!("directory `{operand}` has no *.trace.json files"));
        }
        Ok(files)
    } else {
        Ok(vec![path.to_path_buf()])
    }
}

/// Loads and folds every trace under `operands` into one profile.
fn load_profile(operands: &[String]) -> Result<Profile, String> {
    let mut profile = Profile::new();
    for operand in operands {
        for file in trace_files(operand)? {
            let text = std::fs::read_to_string(&file)
                .map_err(|e| format!("reading `{}`: {e}", file.display()))?;
            let doc = JsonValue::parse(&text)
                .map_err(|e| format!("`{}` is not valid JSON: {e}", file.display()))?;
            profile
                .add_trace(&doc)
                .map_err(|e| format!("`{}`: {e}", file.display()))?;
            log::debug(
                "tmfrt::profile",
                "folded trace",
                &[("path", JsonValue::str(file.display().to_string()))],
            );
        }
    }
    Ok(profile)
}

/// Runs the subcommand and returns the stdout report.
///
/// # Errors
///
/// Returns a message on I/O failures, invalid JSON, or malformed
/// (unbalanced/crossed) trace streams — the strictness CI gates on.
pub fn run_profile(args: &ProfileArgs) -> Result<String, String> {
    if let Some((base_op, cand_op)) = &args.diff {
        let base = load_profile(std::slice::from_ref(base_op))?;
        let cand = load_profile(std::slice::from_ref(cand_op))?;
        let rows = diff(&base, &cand);
        return Ok(render_diff(&rows));
    }
    let profile = load_profile(&args.inputs)?;
    if let Some(path) = &args.folded_out {
        std::fs::write(path, profile.render_folded())
            .map_err(|e| format!("writing `{path}`: {e}"))?;
        log::info(
            "tmfrt::profile",
            "wrote folded stacks",
            &[
                ("path", JsonValue::str(path.clone())),
                ("stacks", JsonValue::UInt(profile.folded.len() as u64)),
            ],
        );
    }
    Ok(profile.render_report())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tmfrt_profile_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_trace(path: &Path, sweep_end: u64) {
        let text = format!(
            r#"{{"traceEvents": [
                {{"name":"phi_search","cat":"tmfrt","ph":"B","ts":0,"pid":1,"tid":1}},
                {{"name":"frtcheck_sweep","cat":"tmfrt","ph":"B","ts":10,"pid":1,"tid":1}},
                {{"name":"frtcheck_sweep","cat":"tmfrt","ph":"E","ts":{sweep_end},"pid":1,"tid":1}},
                {{"name":"phi_search","cat":"tmfrt","ph":"E","ts":{},"pid":1,"tid":1}}
            ], "displayTimeUnit": "ms", "dropped_events": 0}}"#,
            sweep_end + 40
        );
        std::fs::write(path, text).unwrap();
    }

    #[test]
    fn parse_modes_and_usage_errors() {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let a = ProfileArgs::parse(&s(&["t.json", "--folded", "f.txt", "-q"])).unwrap();
        assert_eq!(a.inputs, vec!["t.json"]);
        assert_eq!(a.folded_out.as_deref(), Some("f.txt"));
        assert!(a.quiet);
        let a = ProfileArgs::parse(&s(&["--diff", "a.json", "b.json"])).unwrap();
        assert_eq!(a.diff, Some(("a.json".into(), "b.json".into())));
        assert!(ProfileArgs::parse(&s(&[])).is_err());
        assert!(ProfileArgs::parse(&s(&["--diff", "a.json"])).is_err());
        assert!(ProfileArgs::parse(&s(&["--diff", "a.json", "b.json", "c.json"])).is_err());
        assert!(ProfileArgs::parse(&s(&["--bogus"])).is_err());
        assert!(ProfileArgs::parse(&s(&["--diff", "a", "b", "--folded", "f"])).is_err());
    }

    #[test]
    fn report_on_file_and_directory() {
        let dir = scratch("report");
        write_trace(&dir.join("a.trace.json"), 60);
        write_trace(&dir.join("b.trace.json"), 60);
        // Non-trace files in the directory are ignored.
        std::fs::write(dir.join("notes.txt"), "not a trace").unwrap();
        let args = ProfileArgs {
            inputs: vec![dir.display().to_string()],
            ..ProfileArgs::default()
        };
        let report = run_profile(&args).unwrap();
        assert!(report.contains("frtcheck_sweep"));
        assert!(report.contains("traces=2"));
    }

    #[test]
    fn folded_output_written() {
        let dir = scratch("folded");
        let trace = dir.join("a.trace.json");
        write_trace(&trace, 60);
        let folded = dir.join("stacks.folded");
        let args = ProfileArgs {
            inputs: vec![trace.display().to_string()],
            folded_out: Some(folded.display().to_string()),
            ..ProfileArgs::default()
        };
        run_profile(&args).unwrap();
        let text = std::fs::read_to_string(&folded).unwrap();
        assert!(text.contains("phi_search;frtcheck_sweep 50"), "{text}");
    }

    #[test]
    fn diff_names_the_regressed_phase() {
        let dir = scratch("diff");
        let base = dir.join("base.trace.json");
        let cand = dir.join("cand.trace.json");
        write_trace(&base, 60); // sweep self 50
        write_trace(&cand, 110); // sweep self 100
        let args = ProfileArgs {
            diff: Some((base.display().to_string(), cand.display().to_string())),
            ..ProfileArgs::default()
        };
        let report = run_profile(&args).unwrap();
        assert!(
            report.contains("top regression: frtcheck_sweep"),
            "{report}"
        );
    }

    #[test]
    fn malformed_inputs_are_errors() {
        let dir = scratch("bad");
        let bad = dir.join("bad.trace.json");
        std::fs::write(
            &bad,
            "{\"traceEvents\": [{\"ph\": \"E\", \"name\": \"x\", \"ts\": 1}]}",
        )
        .unwrap();
        let args = ProfileArgs {
            inputs: vec![bad.display().to_string()],
            ..ProfileArgs::default()
        };
        assert!(run_profile(&args).unwrap_err().contains("empty stack"));
        let args = ProfileArgs {
            inputs: vec![dir.join("missing.json").display().to_string()],
            ..ProfileArgs::default()
        };
        assert!(run_profile(&args).is_err());
        // An empty directory is an error, not a silent empty report.
        let empty = scratch("empty");
        let args = ProfileArgs {
            inputs: vec![empty.display().to_string()],
            ..ProfileArgs::default()
        };
        assert!(run_profile(&args).unwrap_err().contains("no *.trace.json"));
    }
}
