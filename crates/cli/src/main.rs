//! `tmfrt` — map BLIF/KISS2 circuits with the DAC'98 TurboMap-frt flows.

use tmfrt_cli::batch::{run_batch_dir, BatchArgs};
use tmfrt_cli::{load_circuit, run, Args};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("batch") {
        run_batch_main(&raw[1..]);
        return;
    }
    let args = match Args::parse(&raw) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let circuit = match load_circuit(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    };
    if args.trace_out.is_some() {
        engine::trace::set_enabled(true);
        engine::trace::job_start();
    }
    match run(&args, &circuit) {
        Ok(outcome) => {
            if let Some(path) = &args.trace_out {
                let buffer = engine::trace::take_thread();
                let doc = engine::trace::chrome_trace(&buffer, &args.input);
                if let Err(e) = std::fs::write(path, doc.render_pretty()) {
                    eprintln!("error writing `{path}`: {e}");
                    std::process::exit(1);
                }
                if !args.quiet {
                    eprintln!(
                        "wrote {path} ({} events, {} dropped)",
                        buffer.events.len(),
                        buffer.dropped
                    );
                }
            }
            if !args.quiet {
                eprint!("{}", outcome.report);
            }
            // Output format by extension: .v → Verilog, .dot → Graphviz,
            // anything else (and stdout) → BLIF.
            let render = |path: Option<&str>| match path {
                Some(p) if p.ends_with(".v") => netlist::to_verilog(&outcome.circuit),
                Some(p) if p.ends_with(".dot") => netlist::to_dot(&outcome.circuit),
                _ => netlist::write_blif(&outcome.circuit),
            };
            match &args.output {
                Some(path) => {
                    if let Err(e) = std::fs::write(path, render(Some(path))) {
                        eprintln!("error writing `{path}`: {e}");
                        std::process::exit(1);
                    }
                    if !args.quiet {
                        eprintln!("wrote {path}");
                    }
                }
                None => print!("{}", render(None)),
            }
            if outcome.star {
                std::process::exit(3); // distinct status for ⋆ results
            }
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}

/// The `tmfrt batch <dir>` subcommand: exits 2 on usage errors, 1 when
/// some circuit failed/panicked/hit its deadline (after reporting the
/// rest), 0 otherwise.
fn run_batch_main(raw: &[String]) {
    let args = match BatchArgs::parse(raw) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    match run_batch_dir(&args) {
        Ok(summary) => {
            for report in &summary.reports {
                if args.quiet && report.outcome.is_completed() {
                    continue;
                }
                match &report.outcome {
                    engine::JobOutcome::Completed(res) => {
                        eprintln!(
                            "=== {} ({:.2}s){}",
                            report.name,
                            report.wall.as_secs_f64(),
                            if res.star { " ⋆" } else { "" }
                        );
                        eprint!("{}", res.report);
                    }
                    engine::JobOutcome::Failed(e) => {
                        eprintln!("=== {} [failed] {e}", report.name);
                    }
                    engine::JobOutcome::Panicked(msg) => {
                        eprintln!("=== {} [panicked] {msg}", report.name);
                    }
                    engine::JobOutcome::DeadlineExceeded { limit } => {
                        eprintln!(
                            "=== {} [deadline] exceeded {:.0}s",
                            report.name,
                            limit.as_secs_f64()
                        );
                    }
                }
            }
            if let Some(path) = &args.metrics_out {
                if !args.quiet {
                    eprintln!("wrote {path}");
                }
            }
            let done = summary.reports.len() - summary.failures.len();
            if !args.quiet {
                eprintln!("batch: {done}/{} circuits completed", summary.reports.len());
            }
            if !summary.failures.is_empty() {
                let names: Vec<String> = summary
                    .failures
                    .iter()
                    .map(|(n, s)| format!("{n} ({s})"))
                    .collect();
                eprintln!("incomplete: {}", names.join(", "));
                std::process::exit(1);
            }
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
