//! `tmfrt` — map BLIF/KISS2 circuits with the DAC'98 TurboMap-frt flows.
//!
//! Stream discipline: results (circuits) go to stdout, everything else —
//! progress reports, structured logs, errors — goes to stderr. Log lines
//! are JSON (see `engine::log`), filtered by `TMFRT_LOG` and `-q`.

use engine::log;
use engine::JsonValue;
use tmfrt_cli::batch::{run_batch_dir, BatchArgs};
use tmfrt_cli::fuzz::{run_fuzz, FuzzArgs};
use tmfrt_cli::profile::{run_profile, ProfileArgs};
use tmfrt_cli::serve::{run_serve, ServeArgs};
use tmfrt_cli::{load_circuit, run, run_explain, run_stats, Args, ExplainArgs, StatsArgs};

/// Heap accounting for `/metrics`, per-job live counters and the v3
/// artifact breakdowns. The wrapper always delegates to the system
/// allocator; counting is off until `engine::mem::set_enabled`.
#[global_allocator]
static ALLOC: engine::mem::CountingAlloc = engine::mem::CountingAlloc::new();

/// Usage errors go to stderr as plain text (they are the interactive
/// surface of the tool, not events), then exit 2.
fn usage_error(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn fatal(context: &str, msg: &str) -> ! {
    log::error("tmfrt", context, &[("error", JsonValue::str(msg))]);
    std::process::exit(1);
}

fn main() {
    engine::mem::set_enabled(true);
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match raw.first().map(String::as_str) {
        Some("batch") => {
            run_batch_main(&raw[1..]);
            return;
        }
        Some("serve") => {
            run_serve_main(&raw[1..]);
            return;
        }
        Some("fuzz") => {
            run_fuzz_main(&raw[1..]);
            return;
        }
        Some("stats") => {
            run_stats_main(&raw[1..]);
            return;
        }
        Some("explain") => {
            run_explain_main(&raw[1..]);
            return;
        }
        Some("profile") => {
            run_profile_main(&raw[1..]);
            return;
        }
        _ => {}
    }
    let args = match Args::parse(&raw) {
        Ok(a) => a,
        Err(msg) => usage_error(&msg),
    };
    log::init(args.quiet);
    let circuit = match load_circuit(&args) {
        Ok(c) => c,
        Err(msg) => fatal("loading circuit", &msg),
    };
    if args.trace_out.is_some() {
        engine::trace::set_enabled(true);
        engine::trace::job_start();
    }
    match run(&args, &circuit) {
        Ok(outcome) => {
            if let Some(path) = &args.trace_out {
                let buffer = engine::trace::take_thread();
                let doc = engine::trace::chrome_trace(&buffer, &args.input);
                if let Err(e) = std::fs::write(path, doc.render_pretty()) {
                    fatal("writing trace", &format!("`{path}`: {e}"));
                }
                log::info(
                    "tmfrt",
                    "wrote trace",
                    &[
                        ("path", JsonValue::str(path.clone())),
                        ("events", JsonValue::UInt(buffer.events.len() as u64)),
                        ("dropped", JsonValue::UInt(buffer.dropped as u64)),
                    ],
                );
            }
            if !args.quiet {
                eprint!("{}", outcome.report);
            }
            // Output format by extension: .v → Verilog, .dot → Graphviz,
            // anything else (and stdout) → BLIF.
            let render = |path: Option<&str>| match path {
                Some(p) if p.ends_with(".v") => netlist::to_verilog(&outcome.circuit),
                Some(p) if p.ends_with(".dot") => netlist::to_dot(&outcome.circuit),
                _ => netlist::write_blif(&outcome.circuit),
            };
            match &args.output {
                Some(path) => {
                    if let Err(e) = std::fs::write(path, render(Some(path))) {
                        fatal("writing output", &format!("`{path}`: {e}"));
                    }
                    log::info(
                        "tmfrt",
                        "wrote output",
                        &[("path", JsonValue::str(path.clone()))],
                    );
                }
                None => print!("{}", render(None)),
            }
            if outcome.star {
                std::process::exit(3); // distinct status for ⋆ results
            }
        }
        Err(msg) => fatal("run failed", &msg),
    }
}

/// The `tmfrt batch <dir>` subcommand: exits 2 on usage errors, 1 when
/// some circuit failed/panicked/hit its deadline (after reporting the
/// rest), 0 otherwise.
fn run_batch_main(raw: &[String]) {
    let args = match BatchArgs::parse(raw) {
        Ok(a) => a,
        Err(msg) => usage_error(&msg),
    };
    log::init(args.quiet);
    match run_batch_dir(&args) {
        Ok(summary) => {
            for report in &summary.reports {
                if args.quiet && report.outcome.is_completed() {
                    continue;
                }
                match &report.outcome {
                    engine::JobOutcome::Completed(res) => {
                        eprintln!(
                            "=== {} ({:.2}s){}",
                            report.name,
                            report.wall.as_secs_f64(),
                            if res.star { " ⋆" } else { "" }
                        );
                        eprint!("{}", res.report);
                    }
                    engine::JobOutcome::Failed(e) => {
                        log::error(
                            "tmfrt::batch",
                            "job failed",
                            &[
                                ("job", JsonValue::str(report.name.clone())),
                                ("error", JsonValue::str(e.clone())),
                            ],
                        );
                    }
                    engine::JobOutcome::Panicked(msg) => {
                        log::error(
                            "tmfrt::batch",
                            "job panicked",
                            &[
                                ("job", JsonValue::str(report.name.clone())),
                                ("error", JsonValue::str(msg.clone())),
                            ],
                        );
                    }
                    engine::JobOutcome::DeadlineExceeded { limit } => {
                        log::error(
                            "tmfrt::batch",
                            "job deadline exceeded",
                            &[
                                ("job", JsonValue::str(report.name.clone())),
                                ("limit_secs", JsonValue::UInt(limit.as_secs())),
                            ],
                        );
                    }
                }
            }
            if let Some(path) = &args.metrics_out {
                log::info(
                    "tmfrt::batch",
                    "wrote metrics",
                    &[("path", JsonValue::str(path.clone()))],
                );
            }
            let done = summary.reports.len() - summary.failures.len();
            if !args.quiet {
                eprintln!("batch: {done}/{} circuits completed", summary.reports.len());
            }
            if !summary.failures.is_empty() {
                let names: Vec<String> = summary
                    .failures
                    .iter()
                    .map(|(n, s)| format!("{n} ({s})"))
                    .collect();
                eprintln!("incomplete: {}", names.join(", "));
                std::process::exit(1);
            }
        }
        Err(msg) => fatal("batch failed", &msg),
    }
}

/// The `tmfrt fuzz` subcommand: exits 2 on usage errors, 1 when the
/// campaign found any oracle violation (or a job escaped the oracle's
/// panic guards), 0 otherwise — deadline-skipped cases alone do not fail
/// the run.
fn run_fuzz_main(raw: &[String]) {
    let args = match FuzzArgs::parse(raw) {
        Ok(a) => a,
        Err(msg) => usage_error(&msg),
    };
    log::init(args.quiet);
    let report = run_fuzz(&args);
    if !report.clean() {
        std::process::exit(1);
    }
}

/// The `tmfrt stats` subcommand: ingestion report to stdout.
fn run_stats_main(raw: &[String]) {
    let args = match StatsArgs::parse(raw) {
        Ok(a) => a,
        Err(msg) => usage_error(&msg),
    };
    log::init(false);
    match run_stats(&args) {
        Ok(report) => print!("{report}"),
        Err(msg) => fatal("stats failed", &msg),
    }
}

/// The `tmfrt explain` subcommand: Φ-optimality certificate and timing
/// attribution to stdout. Exits 2 on usage errors, 1 on mapping errors
/// or when `--check` fails to verify the certificate.
fn run_explain_main(raw: &[String]) {
    let args = match ExplainArgs::parse(raw) {
        Ok(a) => a,
        Err(msg) => usage_error(&msg),
    };
    log::init(false);
    match run_explain(&args) {
        Ok(report) => print!("{report}"),
        Err(msg) => fatal("explain failed", &msg),
    }
}

/// The `tmfrt profile` subcommand: trace analysis report to stdout,
/// diagnostics to stderr. Exits 2 on usage errors, 1 on unreadable or
/// malformed traces.
fn run_profile_main(raw: &[String]) {
    let args = match ProfileArgs::parse(raw) {
        Ok(a) => a,
        Err(msg) => usage_error(&msg),
    };
    log::init(args.quiet);
    match run_profile(&args) {
        Ok(report) => print!("{report}"),
        Err(msg) => fatal("profile failed", &msg),
    }
}

/// The `tmfrt serve` subcommand: runs until `POST /shutdown`.
fn run_serve_main(raw: &[String]) {
    let args = match ServeArgs::parse(raw) {
        Ok(a) => a,
        Err(msg) => usage_error(&msg),
    };
    log::init(args.quiet);
    if let Err(msg) = run_serve(&args) {
        fatal("serve failed", &msg);
    }
}
