//! `tmfrt` — map BLIF/KISS2 circuits with the DAC'98 TurboMap-frt flows.

use tmfrt_cli::{load_circuit, run, Args};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(&raw) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let circuit = match load_circuit(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    };
    match run(&args, &circuit) {
        Ok(outcome) => {
            eprint!("{}", outcome.report);
            // Output format by extension: .v → Verilog, .dot → Graphviz,
            // anything else (and stdout) → BLIF.
            let render = |path: Option<&str>| match path {
                Some(p) if p.ends_with(".v") => netlist::to_verilog(&outcome.circuit),
                Some(p) if p.ends_with(".dot") => netlist::to_dot(&outcome.circuit),
                _ => netlist::write_blif(&outcome.circuit),
            };
            match &args.output {
                Some(path) => {
                    if let Err(e) = std::fs::write(path, render(Some(path))) {
                        eprintln!("error writing `{path}`: {e}");
                        std::process::exit(1);
                    }
                    eprintln!("wrote {path}");
                }
                None => print!("{}", render(None)),
            }
            if outcome.star {
                std::process::exit(3); // distinct status for ⋆ results
            }
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
