//! Graceful-shutdown integration test: `POST /shutdown` must cancel
//! queued and in-flight jobs through their existing [`engine`] cancel
//! tokens and drain the worker pool promptly.
//!
//! This lives in its own test binary (hence its own process) because it
//! installs a global [`engine::log`] memory sink to observe the job
//! lifecycle; sharing a process with other serve tests would interleave
//! their log lines.

use engine::log::{self, MemorySink};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};
use tmfrt_cli::serve::{start, ServeArgs};

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(
        format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
    .expect("send request");
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).expect("read response");
    let text = String::from_utf8_lossy(&buf).into_owned();
    let status = text
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {text}"));
    (status, text)
}

#[test]
fn shutdown_cancels_inflight_and_queued_jobs() {
    let mem = MemorySink::new();
    log::set_sink(Box::new(mem.clone()));
    log::set_level(Some(log::Level::Info));

    // One worker, three substantial jobs: the first occupies the worker
    // while the other two sit in the queue.
    let args = ServeArgs::parse(&[
        "--addr".to_string(),
        "127.0.0.1:0".to_string(),
        "--jobs".to_string(),
        "1".to_string(),
    ])
    .unwrap();
    let handle = start(&args).expect("serve starts");
    let addr = handle.addr;
    let manifest = r#"{"jobs":[
        {"name":"busy0","source":"gen:s5378"},
        {"name":"busy1","source":"gen:s5378"},
        {"name":"busy2","source":"gen:s5378"}]}"#;
    let (status, body) = post(addr, "/jobs", manifest);
    assert_eq!(status, 202, "{body}");

    // Let the worker pick up the first job, then pull the plug.
    std::thread::sleep(Duration::from_millis(50));
    let started = Instant::now();
    let (status, _) = post(addr, "/shutdown", "");
    assert_eq!(status, 200);

    // The handle must drain and join without waiting for three full
    // mapping runs — cancelled jobs bail at their next token poll.
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        handle.shutdown();
        let _ = tx.send(());
    });
    rx.recv_timeout(Duration::from_secs(60))
        .expect("server drained and joined after /shutdown");
    let drained_in = started.elapsed();

    let logs = mem.contents();
    let count = |pat: &str| logs.lines().filter(|l| l.contains(pat)).count();
    assert_eq!(count("\"msg\":\"job queued\""), 3, "{logs}");
    // Cancellation must prevent the queued jobs from running to a clean
    // finish; at most the in-flight one could have squeaked through.
    let finished_ok = logs
        .lines()
        .filter(|l| l.contains("\"msg\":\"job finished\"") && l.contains("\"status\":\"ok\""))
        .count();
    assert!(
        finished_ok <= 1,
        "queued jobs ran to completion despite shutdown (drained in {drained_in:?}): {logs}"
    );
    assert!(logs.contains("\"msg\":\"shutdown requested\""), "{logs}");
    assert!(logs.contains("\"msg\":\"stopped\""), "{logs}");
}
