//! End-to-end tests of `tmfrt serve`: boot the service on an ephemeral
//! port, submit the bundled `small.blif` over HTTP, poll the job to
//! completion, scrape and validate `/metrics`, watch the SSE event
//! stream, and shut down gracefully. One test additionally drives the
//! real `tmfrt` binary to check the stream discipline (logs on stderr,
//! stdout empty).

use engine::JsonValue;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};
use tmfrt_cli::serve::{start, ServeArgs};

fn data_blif() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("data")
        .join("small.blif")
}

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(String::from).collect()
}

/// Sends one raw HTTP/1.1 request and returns `(status, body)`. The
/// server closes after every response, so read-to-end terminates.
fn request(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(raw.as_bytes()).expect("send request");
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).expect("read response");
    let text = String::from_utf8_lossy(&buf).into_owned();
    let status = text
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {text}"));
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    request(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn post(addr: SocketAddr, path: &str, content_type: &str, body: &str) -> (u16, String) {
    request(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Type: {content_type}\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// Polls `GET /jobs/<id>` until the job reports `state: done` (panics
/// after `limit`), returning the final job document.
fn wait_done(addr: SocketAddr, id: u64, limit: Duration) -> JsonValue {
    let start = Instant::now();
    loop {
        let (status, body) = get(addr, &format!("/jobs/{id}"));
        assert_eq!(status, 200, "job {id} lookup failed: {body}");
        let doc = JsonValue::parse(&body).expect("job detail is JSON");
        if doc.get("state").and_then(|s| s.as_str()) == Some("done") {
            return doc;
        }
        assert!(
            start.elapsed() < limit,
            "job {id} did not finish in {limit:?}: {body}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Reads `GET /events` (SSE) until `pattern` appears in the stream or
/// `limit` expires, returning everything read.
fn sse_until(addr: SocketAddr, path: &str, pattern: &str, limit: Duration) -> String {
    let mut s = TcpStream::connect(addr).expect("connect sse");
    s.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: t\r\nAccept: text/event-stream\r\n\r\n").as_bytes(),
    )
    .expect("send sse request");
    s.set_read_timeout(Some(Duration::from_millis(100)))
        .expect("set timeout");
    let start = Instant::now();
    let mut acc = String::new();
    let mut buf = [0u8; 4096];
    while start.elapsed() < limit && !acc.contains(pattern) {
        match s.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => acc.push_str(&String::from_utf8_lossy(&buf[..n])),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => panic!("sse read failed: {e}"),
        }
    }
    assert!(
        acc.contains(pattern),
        "sse stream never sent `{pattern}`: {acc}"
    );
    acc
}

#[test]
fn serve_end_to_end() {
    let args = ServeArgs::parse(&argv("--addr 127.0.0.1:0 --jobs 2")).unwrap();
    let handle = start(&args).expect("serve starts");
    let addr = handle.addr;

    assert_eq!(get(addr, "/healthz"), (200, "ok\n".to_string()));
    assert_eq!(get(addr, "/readyz"), (200, "ready\n".to_string()));

    // Submit the bundled circuit as a raw BLIF body.
    let blif = std::fs::read_to_string(data_blif()).unwrap();
    let (status, body) = post(addr, "/jobs?name=small&verify=64", "text/plain", &blif);
    assert_eq!(status, 202, "{body}");
    let accepted = JsonValue::parse(&body).expect("202 body is JSON");
    let first = &accepted
        .get("accepted")
        .and_then(|a| a.as_array())
        .expect("accepted list")[0];
    let id = first.get("id").and_then(|i| i.as_u64()).expect("job id");
    assert_eq!(first.get("name").and_then(|n| n.as_str()), Some("small"));

    let done = wait_done(addr, id, Duration::from_secs(60));
    assert_eq!(
        done.get("status").and_then(|s| s.as_str()),
        Some("ok"),
        "{done:?}"
    );
    let report = done
        .get("report")
        .and_then(|r| r.as_str())
        .expect("ok job has a report");
    assert!(report.contains("input:"), "{report}");
    assert!(report.contains("verify: equivalent"), "{report}");
    // Final telemetry rides along: counters and phase timers.
    assert!(done.get("counters").is_some(), "{done:?}");
    assert!(done.get("phase_micros").is_some(), "{done:?}");

    // The index lists it as done.
    let (status, body) = get(addr, "/jobs");
    assert_eq!(status, 200);
    let index = JsonValue::parse(&body).unwrap();
    let jobs = index
        .get("jobs")
        .and_then(|j| j.as_array())
        .expect("jobs list");
    assert!(jobs
        .iter()
        .any(|j| j.get("id").and_then(|i| i.as_u64()) == Some(id)
            && j.get("state").and_then(|s| s.as_str()) == Some("done")));

    // /metrics validates under the strict checker and counts the job.
    let (status, text) = get(addr, "/metrics");
    assert_eq!(status, 200);
    engine::prom::validate_exposition(&text).expect("metrics must validate");
    assert!(text.contains("tmfrt_jobs{status=\"ok\"} 1\n"), "{text}");
    assert!(
        text.contains("tmfrt_jobs_inflight{state=\"running\"} 0\n"),
        "{text}"
    );
    assert!(
        text.contains("tmfrt_events{counter=\"flow_augmentations\"}"),
        "{text}"
    );

    // The event log replays the job lifecycle over SSE.
    let events = sse_until(
        addr,
        "/events?since=0",
        "\"state\":\"done\"",
        Duration::from_secs(10),
    );
    assert!(events.contains("\"type\":\"job\""), "{events}");
    assert!(events.contains("\"state\":\"queued\""), "{events}");
    assert!(events.contains("\"status\":\"ok\""), "{events}");

    // A deadline of zero seconds trips before any mapping phase ends.
    let manifest = r#"{"jobs":[{"name":"slow","source":"gen:s5378"}]}"#;
    let (status, body) = post(addr, "/jobs?timeout_secs=0", "application/json", manifest);
    assert_eq!(status, 202, "{body}");
    let slow_id = JsonValue::parse(&body)
        .unwrap()
        .get("accepted")
        .and_then(|a| a.as_array())
        .and_then(|a| a[0].get("id").and_then(|i| i.as_u64()))
        .unwrap();
    let slow = wait_done(addr, slow_id, Duration::from_secs(60));
    assert_eq!(
        slow.get("status").and_then(|s| s.as_str()),
        Some("deadline"),
        "{slow:?}"
    );

    // Unknown routes, bad ids, bad methods.
    assert_eq!(get(addr, "/jobs/9999").0, 404);
    assert_eq!(get(addr, "/jobs/abc").0, 400);
    assert_eq!(get(addr, "/nope").0, 404);
    assert_eq!(
        request(
            addr,
            "DELETE / HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
        )
        .0,
        405
    );
    assert_eq!(post(addr, "/jobs", "text/plain", "").0, 400);
    assert_eq!(
        post(addr, "/jobs", "application/json", r#"{"jobs":[{}]}"#).0,
        400
    );

    // Graceful stop: an open SSE stream gets the shutdown terminator,
    // the handle's thread drains and joins.
    let (tx, rx) = std::sync::mpsc::channel();
    let sse_thread = std::thread::spawn(move || {
        tx.send(()).unwrap();
        sse_until(addr, "/events", "event: shutdown", Duration::from_secs(10))
    });
    rx.recv().unwrap();
    std::thread::sleep(Duration::from_millis(100)); // let the stream attach
    let (status, _) = post(addr, "/shutdown", "text/plain", "");
    assert_eq!(status, 200);
    sse_thread
        .join()
        .expect("sse stream saw the shutdown event");

    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        handle.shutdown();
        let _ = done_tx.send(());
    });
    done_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("server drained and joined after /shutdown");
}

#[test]
fn serve_trace_endpoint_and_mem_metrics() {
    let args = ServeArgs::parse(&argv("--addr 127.0.0.1:0 --jobs 1 --trace")).unwrap();
    let handle = start(&args).expect("serve starts");
    let addr = handle.addr;

    let blif = std::fs::read_to_string(data_blif()).unwrap();
    let (status, body) = post(addr, "/jobs?name=traced", "text/plain", &blif);
    assert_eq!(status, 202, "{body}");
    let id = JsonValue::parse(&body)
        .unwrap()
        .get("accepted")
        .and_then(|a| a.as_array())
        .and_then(|a| a[0].get("id").and_then(|i| i.as_u64()))
        .unwrap();
    let done = wait_done(addr, id, Duration::from_secs(60));
    assert_eq!(done.get("status").and_then(|s| s.as_str()), Some("ok"));
    // The job detail carries the process peak-RSS context (Linux).
    if engine::mem::peak_rss_kib().is_some() {
        assert!(done.get("process_peak_rss_kib").is_some(), "{done:?}");
    }

    // The finished job's trace is a well-formed Chrome-trace document:
    // the offline analyzer must accept it and see the mapper's spans.
    let (status, body) = get(addr, &format!("/jobs/{id}/trace"));
    assert_eq!(status, 200, "{body}");
    let doc = JsonValue::parse(&body).expect("trace body is JSON");
    let mut profile = engine::profile::Profile::new();
    profile.add_trace(&doc).expect("trace is well-formed");
    assert!(
        profile.spans.contains_key("phi_search"),
        "no phi_search span in {:?}",
        profile.spans.keys().collect::<Vec<_>>()
    );

    // Unknown job and bad ids on the trace route.
    assert_eq!(get(addr, "/jobs/9999/trace").0, 404);
    assert_eq!(get(addr, "/jobs/abc/trace").0, 400);

    // /metrics validates with the process-wide allocator gauges present.
    let (status, text) = get(addr, "/metrics");
    assert_eq!(status, 200);
    engine::prom::validate_exposition(&text).expect("metrics must validate");
    assert!(text.contains("tmfrt_process_heap_live_bytes"), "{text}");
    assert!(text.contains("tmfrt_process_heap_peak_bytes"), "{text}");
    assert!(
        text.contains("tmfrt_process_rss_kib{kind=\"peak\"}"),
        "{text}"
    );
    assert!(text.contains("tmfrt_mem_allocs_total"), "{text}");

    handle.shutdown();
}

#[test]
fn serve_report_endpoint_metrics_and_keepalive() {
    let args = ServeArgs::parse(&argv("--addr 127.0.0.1:0 --jobs 1 --trace")).unwrap();
    let handle = start(&args).expect("serve starts");
    let addr = handle.addr;

    // report=1 requires the turbomap-frt flow.
    let blif = std::fs::read_to_string(data_blif()).unwrap();
    let (status, body) = post(
        addr,
        "/jobs?report=1&algorithm=turbomap",
        "text/plain",
        &blif,
    );
    assert_eq!(status, 400, "{body}");
    let (status, body) = post(addr, "/jobs?report=2", "text/plain", &blif);
    assert_eq!(status, 400, "{body}");

    // A report=1 job records a turbomap-report/v1 document.
    let (status, body) = post(addr, "/jobs?name=certified&report=1", "text/plain", &blif);
    assert_eq!(status, 202, "{body}");
    let id = JsonValue::parse(&body)
        .unwrap()
        .get("accepted")
        .and_then(|a| a.as_array())
        .and_then(|a| a[0].get("id").and_then(|i| i.as_u64()))
        .unwrap();
    let done = wait_done(addr, id, Duration::from_secs(60));
    assert_eq!(
        done.get("status").and_then(|s| s.as_str()),
        Some("ok"),
        "{done:?}"
    );
    // The detail document advertises the report and surfaces the
    // headline efficiency counters and trace health explicitly.
    assert_eq!(
        done.get("report_available")
            .map(|v| matches!(v, JsonValue::Bool(true))),
        Some(true),
        "{done:?}"
    );
    assert!(done.get("sweeps_saved").and_then(|v| v.as_u64()).is_some());
    assert!(done.get("frt_capped").and_then(|v| v.as_u64()).is_some());
    assert_eq!(
        done.get("trace_dropped_events").and_then(|v| v.as_u64()),
        Some(0),
        "{done:?}"
    );

    let (status, body) = get(addr, &format!("/jobs/{id}/report"));
    assert_eq!(status, 200, "{body}");
    let doc = JsonValue::parse(&body).expect("report body is JSON");
    assert_eq!(
        doc.get("schema").and_then(|s| s.as_str()),
        Some(report::SCHEMA),
        "{body}"
    );
    assert!(doc.get("witness").is_some(), "{body}");
    assert!(doc.get("timing").is_some(), "{body}");

    // A job submitted without report=1 serves a 404 with a hint.
    let (status, body) = post(addr, "/jobs?name=plain", "text/plain", &blif);
    assert_eq!(status, 202, "{body}");
    let plain_id = JsonValue::parse(&body)
        .unwrap()
        .get("accepted")
        .and_then(|a| a.as_array())
        .and_then(|a| a[0].get("id").and_then(|i| i.as_u64()))
        .unwrap();
    wait_done(addr, plain_id, Duration::from_secs(60));
    let (status, body) = get(addr, &format!("/jobs/{plain_id}/report"));
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("report=1"), "{body}");
    assert_eq!(get(addr, "/jobs/9999/report").0, 404);
    assert_eq!(get(addr, "/jobs/abc/report").0, 400);

    // The dedicated observability families ride /metrics and validate.
    let (status, text) = get(addr, "/metrics");
    assert_eq!(status, 200);
    engine::prom::validate_exposition(&text).expect("metrics must validate");
    assert!(text.contains("tmfrt_trace_dropped_events 0\n"), "{text}");
    assert!(text.contains("tmfrt_sweeps_saved_total"), "{text}");
    assert!(text.contains("tmfrt_frt_capped_total"), "{text}");
    assert!(
        text.contains("tmfrt_events{counter=\"reports_generated\"} 1\n"),
        "{text}"
    );

    // An idle SSE stream emits comment-line keepalives about once per
    // second so proxies do not time the connection out between jobs.
    let acc = sse_until(addr, "/events", ": keepalive", Duration::from_secs(10));
    assert!(acc.contains(": keepalive\n\n"), "{acc}");

    handle.shutdown();
}

#[test]
fn serve_rejects_malformed_body_framing() {
    let args = ServeArgs::parse(&argv("--addr 127.0.0.1:0 --jobs 1")).unwrap();
    let handle = start(&args).expect("serve starts");
    let addr = handle.addr;

    // A body-carrying request without Content-Length must draw 411, not
    // be treated as an empty submission (which would read as a user
    // error, 400, and mask the client's framing bug).
    let (status, body) = request(
        addr,
        "POST /jobs HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 411, "{body}");
    assert!(body.contains("length required"), "{body}");

    // Claiming more bytes than the client sends is a 400 once the
    // half-close reveals the truncation.
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(b"POST /jobs HTTP/1.1\r\nHost: t\r\nContent-Length: 100\r\n\r\n.model x\n")
        .expect("send truncated request");
    s.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    assert!(out.starts_with("HTTP/1.1 400"), "{out}");

    // Neither malformed request queued a job or hurt the service.
    let (status, body) = get(addr, "/jobs");
    assert_eq!(status, 200);
    let index = JsonValue::parse(&body).unwrap();
    assert!(
        index
            .get("jobs")
            .and_then(|j| j.as_array())
            .is_some_and(|j| j.is_empty()),
        "{body}"
    );
    assert_eq!(get(addr, "/healthz").0, 200);
    handle.shutdown();
}

#[test]
fn serve_binary_logs_to_stderr_only() {
    // Drive the real binary: the startup log line reports the ephemeral
    // port, stdout stays empty (stream discipline), exit is clean.
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_tmfrt"))
        .args(["serve", "--addr", "127.0.0.1:0", "--jobs", "1"])
        .env("TMFRT_LOG", "info")
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("tmfrt serve spawns");
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let mut line = String::new();
    let addr: SocketAddr = loop {
        line.clear();
        assert_ne!(
            stderr.read_line(&mut line).unwrap(),
            0,
            "serve exited early"
        );
        let doc = JsonValue::parse(line.trim()).expect("stderr lines are JSON");
        if doc.get("msg").and_then(|m| m.as_str()) == Some("listening") {
            break doc
                .get("fields")
                .and_then(|f| f.get("addr"))
                .and_then(|a| a.as_str())
                .expect("listening line carries addr")
                .parse()
                .expect("addr parses");
        }
    };
    // Keep draining stderr so the child never blocks on a full pipe,
    // collecting the lines for the JSON check below.
    let drain = std::thread::spawn(move || {
        let mut lines = Vec::new();
        let mut line = String::new();
        while stderr.read_line(&mut line).unwrap_or(0) != 0 {
            lines.push(line.trim().to_string());
            line.clear();
        }
        lines
    });

    assert_eq!(get(addr, "/healthz"), (200, "ok\n".to_string()));
    let blif = std::fs::read_to_string(data_blif()).unwrap();
    let (status, body) = post(addr, "/jobs?name=bin&verify=16", "text/plain", &blif);
    assert_eq!(status, 202, "{body}");
    let id = JsonValue::parse(&body)
        .unwrap()
        .get("accepted")
        .and_then(|a| a.as_array())
        .and_then(|a| a[0].get("id").and_then(|i| i.as_u64()))
        .unwrap();
    let done = wait_done(addr, id, Duration::from_secs(60));
    assert_eq!(done.get("status").and_then(|s| s.as_str()), Some("ok"));

    assert_eq!(post(addr, "/shutdown", "text/plain", "").0, 200);
    let out = child.wait_with_output().expect("serve exits");
    assert!(
        out.status.success(),
        "serve exited nonzero: {:?}",
        out.status
    );
    assert!(out.stdout.is_empty(), "serve wrote to stdout");
    for l in drain.join().unwrap() {
        let doc =
            JsonValue::parse(&l).unwrap_or_else(|e| panic!("non-JSON stderr line `{l}`: {e}"));
        assert!(
            doc.get("level").is_some() && doc.get("msg").is_some(),
            "{l}"
        );
    }
}
