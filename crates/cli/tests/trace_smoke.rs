//! End-to-end observability smoke tests driving the real binaries (the
//! same flow as the CI `trace-smoke` job): `tmfrt map --trace-out` must
//! emit a Chrome trace that `tracecheck` accepts, and
//! `tmfrt batch --metrics-out` must emit valid Prometheus exposition.

use std::path::PathBuf;
use std::process::Command;

fn data_blif() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("data")
        .join("small.blif")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tmfrt_smoke_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn map_trace_out_passes_tracecheck() {
    let dir = scratch("trace");
    let trace = dir.join("t.trace.json");
    let out = Command::new(env!("CARGO_BIN_EXE_tmfrt"))
        .arg("map")
        .arg(data_blif())
        .arg("--trace-out")
        .arg(&trace)
        .arg("-q")
        .output()
        .expect("tmfrt runs");
    assert!(
        out.status.success(),
        "tmfrt failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // --quiet: nothing on stderr, the mapped BLIF on stdout.
    assert!(
        out.stderr.is_empty(),
        "quiet run wrote to stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains(".model"));

    let text = std::fs::read_to_string(&trace).unwrap();
    assert!(text.contains("\"traceEvents\""));
    assert!(text.contains("\"phi_search\""), "no phi_search span");

    let check = Command::new(env!("CARGO_BIN_EXE_tracecheck"))
        .arg(&trace)
        .output()
        .expect("tracecheck runs");
    assert!(
        check.status.success(),
        "tracecheck rejected the trace: {}",
        String::from_utf8_lossy(&check.stderr)
    );
}

#[test]
fn profile_report_is_stdout_only() {
    let dir = scratch("profile");
    let trace = dir.join("p.trace.json");
    let out = Command::new(env!("CARGO_BIN_EXE_tmfrt"))
        .arg("map")
        .arg(data_blif())
        .arg("--trace-out")
        .arg(&trace)
        .arg("-q")
        .output()
        .expect("tmfrt runs");
    assert!(
        out.status.success(),
        "tmfrt failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // `tmfrt profile` keeps the stream discipline: the report is stdout,
    // -q silences every diagnostic.
    let prof = Command::new(env!("CARGO_BIN_EXE_tmfrt"))
        .arg("profile")
        .arg(&trace)
        .arg("-q")
        .output()
        .expect("tmfrt profile runs");
    assert!(
        prof.status.success(),
        "profile failed: {}",
        String::from_utf8_lossy(&prof.stderr)
    );
    assert!(
        prof.stderr.is_empty(),
        "quiet profile wrote to stderr: {}",
        String::from_utf8_lossy(&prof.stderr)
    );
    let report = String::from_utf8_lossy(&prof.stdout);
    assert!(report.contains("phi_search"), "{report}");
    assert!(report.contains("self"), "{report}");

    // Self-diff is a clean baseline: no net regression to report.
    let diff = Command::new(env!("CARGO_BIN_EXE_tmfrt"))
        .args(["profile", "--diff"])
        .arg(&trace)
        .arg(&trace)
        .arg("-q")
        .output()
        .expect("tmfrt profile --diff runs");
    assert!(
        diff.status.success(),
        "diff failed: {}",
        String::from_utf8_lossy(&diff.stderr)
    );
    assert!(diff.stderr.is_empty(), "quiet diff wrote to stderr");
    assert!(String::from_utf8_lossy(&diff.stdout).contains("phi_search"));
}

#[test]
fn profile_rejects_malformed_trace() {
    let dir = scratch("profile_bad");
    let bad = dir.join("bad.trace.json");
    // An orphan E event: structurally JSON, semantically not a trace.
    std::fs::write(&bad, "{\"traceEvents\": [{\"ph\": \"E\", \"ts\": 5}]}").unwrap();
    let prof = Command::new(env!("CARGO_BIN_EXE_tmfrt"))
        .arg("profile")
        .arg(&bad)
        .output()
        .expect("tmfrt profile runs");
    assert!(!prof.status.success(), "malformed trace must fail");
    assert!(prof.stdout.is_empty(), "no report on failure");
}

#[test]
fn tracecheck_rejects_garbage() {
    let dir = scratch("garbage");
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{\"traceEvents\": [{\"ph\": \"B\"}]}").unwrap();
    let check = Command::new(env!("CARGO_BIN_EXE_tracecheck"))
        .arg(&bad)
        .output()
        .expect("tracecheck runs");
    assert!(!check.status.success());
}

#[test]
fn batch_metrics_out_is_valid_exposition() {
    let dir = scratch("metrics");
    std::fs::copy(data_blif(), dir.join("small.blif")).unwrap();
    let metrics = dir.join("metrics.prom");
    let out = Command::new(env!("CARGO_BIN_EXE_tmfrt"))
        .arg("batch")
        .arg(&dir)
        .arg("--metrics-out")
        .arg(&metrics)
        .arg("--verify")
        .arg("64")
        .arg("-q")
        .output()
        .expect("tmfrt batch runs");
    assert!(
        out.status.success(),
        "batch failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(out.stderr.is_empty(), "quiet batch wrote to stderr");

    let text = std::fs::read_to_string(&metrics).unwrap();
    engine::prom::validate_exposition(&text).expect("metrics must validate");
    assert!(text.contains("tmfrt_jobs{status=\"ok\"} 1\n"), "{text}");
    assert!(text.contains("tmfrt_events{counter=\"flow_augmentations\"}"));
    // Value histograms flow through the job telemetry into the metrics.
    assert!(text.contains("tmfrt_cut_size{quantile=\"0.5\"}"), "{text}");
}
