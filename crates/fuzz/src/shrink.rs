//! Delta-debugging minimization of failing cases.
//!
//! Given a circuit the oracle rejects, [`shrink`] greedily applies
//! reduction operators and keeps any candidate that (a) is still valid,
//! (b) still fails with the **same verdict kind**, and (c) is strictly
//! smaller under the `(gates + registers, nodes + edges)` measure. The
//! operators, tried in deterministic order each pass:
//!
//! * **drop a primary output** — rebuild without one PO, then prune the
//!   dead cone;
//! * **bypass a gate** — replace `u →[c₁] g →[c₂] v` by `u →[c₁‖c₂] v`
//!   for one chosen fanin pin. Concatenating the register chains keeps
//!   every cycle's weight intact, so a combinational cycle can never
//!   appear (a zero-weight cycle through the new edge would have been a
//!   zero-weight cycle through `g`);
//! * **trim a register** — drop the sink-end FF of a registered edge;
//! * **X-ify an initial value** — replace one defined FF bit with `X`.
//!
//! The loop stops at a fixpoint or when the oracle-evaluation budget is
//! exhausted; every accepted step bumps the `shrink_steps` telemetry
//! counter. Shrinking re-runs the full oracle per candidate, so it is the
//! expensive half of a failing case — budget accordingly.

use crate::oracle::{run_oracle, CheckKind, OracleConfig};
use netlist::{Bit, Circuit, NodeId};
use std::collections::HashMap;

/// Shrinker limits.
#[derive(Debug, Clone, Copy)]
pub struct ShrinkConfig {
    /// Maximum number of oracle evaluations (candidate judgements).
    pub budget: usize,
}

impl Default for ShrinkConfig {
    fn default() -> ShrinkConfig {
        ShrinkConfig { budget: 160 }
    }
}

/// What the shrinker produced.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimized circuit (still failing with the original kind).
    pub circuit: Circuit,
    /// Accepted reduction steps.
    pub steps: usize,
    /// Oracle evaluations spent.
    pub evals: usize,
}

/// The minimization measure, lexicographic: registers count like gates;
/// total size tie-breaks so pure rewires cannot loop; the count of
/// *defined* initial bits comes last so X-ifying initial values is
/// progress once nothing structural shrinks.
fn measure(c: &Circuit) -> (usize, usize, usize) {
    let defined = c
        .edge_ids()
        .flat_map(|e| c.edge(e).ffs().iter())
        .filter(|&&b| b != Bit::X)
        .count();
    (
        c.num_gates() + c.ff_count_total(),
        c.num_nodes() + c.num_edges(),
        defined,
    )
}

/// Minimizes `failing` while preserving a violation of `kind`.
///
/// `failing` must currently fail the oracle with `kind` among its
/// violations; if it does not, it is returned unchanged.
pub fn shrink(
    failing: &Circuit,
    oracle_cfg: &OracleConfig,
    kind: CheckKind,
    cfg: &ShrinkConfig,
) -> ShrinkOutcome {
    shrink_with(failing, |c| run_oracle(c, oracle_cfg).has_kind(kind), cfg)
}

/// Minimizes `failing` while `still_fails` holds: the generic engine
/// behind [`shrink`], with the oracle abstracted into a predicate so
/// tests (and future harnesses) can minimize against any property.
pub fn shrink_with(
    failing: &Circuit,
    still_fails: impl Fn(&Circuit) -> bool,
    cfg: &ShrinkConfig,
) -> ShrinkOutcome {
    let mut current = failing.clone();
    let mut steps = 0usize;
    let mut evals = 0usize;
    'passes: loop {
        let cur_measure = measure(&current);
        for cand in candidates(&current) {
            if evals >= cfg.budget {
                break 'passes;
            }
            if engine::cancel::cancelled() {
                break 'passes;
            }
            if measure(&cand) >= cur_measure {
                continue;
            }
            // A repro must satisfy the generator's invariants: valid and
            // sharing-consistent (a conflict the *shrinker* introduced
            // would fire the initial-state check for the wrong reason).
            if netlist::validate(&cand).is_err() || !cand.sharing_consistent() {
                continue;
            }
            evals += 1;
            if still_fails(&cand) {
                current = cand;
                steps += 1;
                engine::telemetry::count(engine::telemetry::Counter::ShrinkSteps, 1);
                continue 'passes; // restart with the smaller circuit
            }
        }
        break; // full pass without progress: fixpoint
    }
    ShrinkOutcome {
        circuit: current,
        steps,
        evals,
    }
}

/// All single-step reduction candidates, in deterministic order.
fn candidates(c: &Circuit) -> Vec<Circuit> {
    let mut out = Vec::new();
    // 1. Drop each PO (keep at least one).
    if c.outputs().len() > 1 {
        for drop in 0..c.outputs().len() {
            if let Some(cand) = rebuild(c, Some(drop), None) {
                out.push(cand);
            }
        }
    }
    // 2. Bypass each gate through each fanin pin.
    for g in c.gate_ids() {
        for pin in 0..c.node(g).fanin().len() {
            // A self-loop pin cannot serve as the bypass path.
            if c.edge(c.node(g).fanin()[pin]).from() == g {
                continue;
            }
            if let Some(cand) = rebuild(c, None, Some((g, pin))) {
                out.push(cand);
            }
        }
    }
    // 3. Trim the sink-end register of each registered edge.
    for e in c.edge_ids() {
        if c.edge(e).weight() >= 1 {
            let mut cand = c.clone();
            cand.ffs_mut(e).pop();
            out.push(cand);
        }
    }
    // 4. X-ify each defined initial value (reduces the third measure
    //    component once nothing structural shrinks).
    for e in c.edge_ids() {
        for (i, &b) in c.edge(e).ffs().iter().enumerate() {
            if b != Bit::X {
                let mut cand = c.clone();
                cand.ffs_mut(e)[i] = Bit::X;
                out.push(cand);
            }
        }
    }
    out
}

/// Rebuilds `c` without PO index `drop_po` and/or with gate `bypass.0`
/// removed, its consumers rewired to the driver of fanin pin `bypass.1`
/// (register chains concatenated). Dead logic is pruned. Returns `None`
/// when the rebuild cannot produce a structurally sound circuit.
fn rebuild(
    c: &Circuit,
    drop_po: Option<usize>,
    bypass: Option<(NodeId, usize)>,
) -> Option<Circuit> {
    let bypassed_gate = bypass.map(|(g, _)| g);
    // Resolve a driver through the bypassed gate: returns the effective
    // driver and the register chain standing between it and the gate's
    // former output.
    let resolve = |from: NodeId| -> (NodeId, Vec<Bit>) {
        if Some(from) == bypassed_gate {
            let (g, pin) = bypass.expect("bypassed_gate implies bypass");
            let e = c.node(g).fanin()[pin];
            (c.edge(e).from(), c.edge(e).ffs().to_vec())
        } else {
            (from, Vec::new())
        }
    };

    let mut nc = Circuit::new(c.name());
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    for &pi in c.inputs() {
        map.insert(pi, nc.add_input(c.node(pi).name()).ok()?);
    }
    for g in c.gate_ids() {
        if Some(g) == bypassed_gate {
            continue;
        }
        map.insert(
            g,
            nc.add_gate(c.node(g).name(), c.node(g).function()?.clone())
                .ok()?,
        );
    }
    for (i, &po) in c.outputs().iter().enumerate() {
        if Some(i) == drop_po {
            continue;
        }
        map.insert(po, nc.add_output(c.node(po).name()).ok()?);
    }
    // Reconnect fanins per node, in pin order (pin order is semantic).
    let reconnect = |old: NodeId, nc: &mut Circuit, map: &HashMap<NodeId, NodeId>| -> Option<()> {
        let new = *map.get(&old)?;
        for &e in c.node(old).fanin() {
            let edge = c.edge(e);
            let (drv, prefix) = resolve(edge.from());
            let mut chain = prefix;
            chain.extend_from_slice(edge.ffs());
            nc.connect(*map.get(&drv)?, new, chain).ok()?;
        }
        Some(())
    };
    for g in c.gate_ids() {
        if Some(g) == bypassed_gate {
            continue;
        }
        reconnect(g, &mut nc, &map)?;
    }
    for (i, &po) in c.outputs().iter().enumerate() {
        if Some(i) == drop_po {
            continue;
        }
        reconnect(po, &mut nc, &map)?;
    }
    // Drop the cones that lost their last path to a PO.
    netlist::prune_dead(&nc).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{EquivMode, TruthTable};
    use workloads::{generate_fsm, Encoding, FsmSpec};

    fn base(seed: u64) -> Circuit {
        generate_fsm(&FsmSpec {
            name: format!("s{seed}"),
            states: 5,
            inputs: 2,
            decoded: 1,
            outputs: 2,
            encoding: Encoding::Binary,
            registered_inputs: false,
            seed,
        })
    }

    #[test]
    fn rebuild_identity_is_behaviour_preserving() {
        // No drop, no bypass: the rebuilt circuit (modulo dead-cone
        // pruning) must behave exactly like the original.
        let c = base(3);
        let r = rebuild(&c, None, None).unwrap();
        netlist::validate(&r).unwrap();
        let seq = netlist::random_sequence(c.inputs().len(), 32, 9);
        assert!(
            netlist::sequence_equiv_mode(&c, &r, &seq, EquivMode::Conformance)
                .unwrap()
                .is_equivalent()
        );
    }

    #[test]
    fn bypass_preserves_cycle_weights() {
        // Bypassing any gate must never create a combinational cycle —
        // validate() (which checks that) must pass for every candidate.
        let c = base(4);
        for g in c.gate_ids() {
            for pin in 0..c.node(g).fanin().len() {
                if c.edge(c.node(g).fanin()[pin]).from() == g {
                    continue;
                }
                if let Some(r) = rebuild(&c, None, Some((g, pin))) {
                    netlist::validate(&r).unwrap();
                }
            }
        }
    }

    #[test]
    fn drop_po_reduces_and_stays_valid() {
        let c = base(5);
        assert!(c.outputs().len() > 1);
        let r = rebuild(&c, Some(0), None).unwrap();
        netlist::validate(&r).unwrap();
        assert_eq!(r.outputs().len(), c.outputs().len() - 1);
        assert!(measure(&r) <= measure(&c));
    }

    #[test]
    fn candidates_are_all_structurally_usable() {
        let c = base(6);
        for cand in candidates(&c) {
            // Candidates may fail validation (e.g. a trimmed register
            // closing a combinational cycle); the shrinker filters those.
            // But they must at least be well-formed enough to validate
            // without panicking.
            let _ = netlist::validate(&cand);
        }
    }

    #[test]
    fn shrink_is_a_fixpoint_on_passing_circuits() {
        // A circuit that does not fail with the requested kind comes back
        // unchanged (no candidate can "still fail the same way").
        let mut c = Circuit::new("tiny");
        let a = c.add_input("a").unwrap();
        let g = c.add_gate("g", TruthTable::not()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g, vec![]).unwrap();
        c.connect(g, o, vec![Bit::Zero]).unwrap();
        let out = shrink(
            &c,
            &OracleConfig {
                equiv_vectors: 8,
                alt_sweep_workers: 0,
                ..OracleConfig::default()
            },
            CheckKind::Equivalence,
            &ShrinkConfig { budget: 20 },
        );
        assert_eq!(out.steps, 0);
        assert_eq!(netlist::write_blif(&out.circuit), netlist::write_blif(&c));
    }
}
