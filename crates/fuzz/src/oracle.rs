//! The differential oracle: three mappers judging each other.
//!
//! For one case the oracle runs FlowMap-frt, TurboMap-frt and TurboMap
//! (general retiming) and checks the paper's relational claims:
//!
//! 1. **Φ ordering** (Theorem 3 and footnote 4) —
//!    `Φ(TurboMap) ≤ Φ(TurboMap-frt) ≤ Φ(FlowMap-frt)`: forward retiming
//!    restricts general retiming, and TurboMap-frt is optimal among
//!    forward-retimed mappings while FlowMap-frt is merely one of them.
//! 2. **Sequential equivalence** — every mapped result must match the
//!    source under three-valued simulation with
//!    [`EquivMode::Compatibility`]: `X` against a defined bit passes
//!    (pessimistic initial-state derivation may lose definedness, never
//!    invert it), conflicting defined bits fail. The general flow is
//!    exempt when it reports `⋆` (initial state lost) — there is nothing
//!    to compare against.
//! 3. **Initial-state computability** (Section 3.3) — the forward-retimed
//!    flows must never report `⋆`: no lost initial values, no register-
//!    sharing conflicts.
//! 4. **Determinism** — TurboMap-frt must produce byte-identical BLIF for
//!    every `sweep_workers` setting.
//! 5. **Partition cross-check** (opt-in, `partitions ≥ 2`) — the case is
//!    also mapped partition-and-conquer (`partition::partition_map`):
//!    the stitched result must be valid, K-bounded, sequentially
//!    equivalent to the source, and obey the Φ-gap bound — it can never
//!    beat the monolithic TurboMap-frt optimum.
//!
//! Before the mappers run, a **front-end round-trip** check
//! ([`CheckKind::RoundTrip`]) writes the case with
//! `blifio::write_circuit` and re-reads it: the streaming reader and
//! the old `netlist::blif` reader must agree structurally on the
//! written bytes, and the re-read circuit must be sequentially
//! equivalent to the source with its interface and register totals
//! intact — making every fuzz case a differential test of the BLIF
//! front-end too.
//!
//! Mapper panics are caught ([`std::panic::catch_unwind`]) and reported
//! as [`CheckKind::MapperPanic`] verdicts so a panicking case can still
//! be shrunk and archived. Cancellation (batch deadline) is recognized
//! and reported as [`OracleOutcome::Cancelled`], never as a failure.

use netlist::{random_equiv_mode, Circuit, EquivMode, EquivResult};
use std::panic::{catch_unwind, AssertUnwindSafe};
use turbomap::{Options, TurboMapError, TurboMapResult};

/// Oracle knobs; a repro manifest stores all of them.
#[derive(Debug, Clone, Copy)]
pub struct OracleConfig {
    /// LUT input bound K.
    pub k: usize,
    /// Random vectors per equivalence check.
    pub equiv_vectors: usize,
    /// Seed of the equivalence-check input sequence.
    pub equiv_seed: u64,
    /// Second `sweep_workers` setting for the determinism check (the
    /// first is always 1); 0 disables the check.
    pub alt_sweep_workers: usize,
    /// Run the Φ-optimality certificate check: extract a
    /// `turbomap-report/v1` document via `report::explain` and replay
    /// it through the independent checker.
    pub certificates: bool,
    /// Block count for the partition-and-conquer cross-check
    /// ([`CheckKind::PartitionCheck`]): the case is also mapped through
    /// `partition::partition_map` with this many blocks and judged for
    /// sequential equivalence and the Φ-gap bound (the partitioned Φ
    /// can never beat the monolithic TurboMap-frt optimum). Values
    /// below 2 disable the check.
    pub partitions: usize,
}

impl Default for OracleConfig {
    fn default() -> OracleConfig {
        OracleConfig {
            k: 4,
            equiv_vectors: 64,
            equiv_seed: 0xEC41_55EE,
            alt_sweep_workers: 3,
            certificates: false,
            partitions: 0,
        }
    }
}

/// Which oracle check fired. Doubles as the shrinker's verdict key: a
/// shrink step is only accepted when the minimized case still violates
/// the same kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckKind {
    /// `Φ(TurboMap) ≤ Φ(TurboMap-frt) ≤ Φ(FlowMap-frt)` broken.
    PhiOrdering,
    /// A mapped result diverged from the source under three-valued
    /// simulation (Compatibility mode).
    Equivalence,
    /// A forward-retimed flow reported `⋆` (lost initial state or
    /// register-sharing conflict).
    InitialState,
    /// TurboMap-frt produced different bytes across `sweep_workers`.
    Determinism,
    /// A mapper returned an error on a valid input.
    MapperError,
    /// A mapper panicked.
    MapperPanic,
    /// A mapped result failed structural validation or the K bound.
    StructuralInvalid,
    /// The BLIF front-end failed to round-trip the case: writing it
    /// with `blifio::write_circuit` and re-reading with the streaming
    /// reader did not reproduce a structurally identical circuit.
    RoundTrip,
    /// The Φ-optimality certificate failed: `report::explain` errored,
    /// its Φ disagreed with the oracle's own TurboMap-frt run, or the
    /// rendered report did not replay through the independent checker.
    CertificateCheck,
    /// The scalar and vector simulation engines disagreed: either a
    /// same-stimulus bit-for-bit sweep diverged, or a vectorized
    /// equivalence counterexample did not reproduce on the scalar
    /// simulator.
    SimDivergence,
    /// The partition-and-conquer mapping broke an invariant: the
    /// stitched circuit was invalid, inequivalent to the source, its
    /// measured period disagreed with its report, or its Φ beat the
    /// monolithic optimum (impossible — frozen seams only *lose*
    /// retiming freedom).
    PartitionCheck,
}

impl CheckKind {
    /// Stable snake_case name (manifest key, log field).
    pub fn name(self) -> &'static str {
        match self {
            CheckKind::PhiOrdering => "phi_ordering",
            CheckKind::Equivalence => "equivalence",
            CheckKind::InitialState => "initial_state",
            CheckKind::Determinism => "determinism",
            CheckKind::MapperError => "mapper_error",
            CheckKind::MapperPanic => "mapper_panic",
            CheckKind::StructuralInvalid => "structural_invalid",
            CheckKind::RoundTrip => "round_trip",
            CheckKind::CertificateCheck => "certificate_check",
            CheckKind::SimDivergence => "sim_divergence",
            CheckKind::PartitionCheck => "partition_check",
        }
    }
}

/// One violated invariant.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which check fired.
    pub kind: CheckKind,
    /// Which flow it implicates (`flowmap-frt`, `turbomap-frt`,
    /// `turbomap`, or `oracle` for cross-flow checks).
    pub flow: &'static str,
    /// Human-readable detail (periods, counterexample cycle, …).
    pub detail: String,
}

/// Periods and sizes of the successfully mapped flows (diagnostics).
#[derive(Debug, Clone, Default)]
pub struct CaseStats {
    /// `(period, luts)` of FlowMap-frt when it completed.
    pub flowmap_frt: Option<(u64, usize)>,
    /// `(period, luts)` of TurboMap-frt when it completed.
    pub turbomap_frt: Option<(u64, usize)>,
    /// `(period, luts)` of TurboMap (general) when it completed.
    pub turbomap_general: Option<(u64, usize)>,
    /// True when the general flow reported `⋆`.
    pub general_star: bool,
}

/// The oracle's judgement of one case.
#[derive(Debug, Clone)]
pub enum OracleOutcome {
    /// Every check passed.
    Pass(CaseStats),
    /// At least one invariant was violated.
    Fail {
        /// The violations, in check order.
        violations: Vec<Violation>,
        /// Whatever stats were collected before/despite the failure.
        stats: CaseStats,
    },
    /// The run was cancelled (deadline); the case was *not* judged.
    Cancelled,
}

impl OracleOutcome {
    /// True for [`OracleOutcome::Pass`].
    pub fn is_pass(&self) -> bool {
        matches!(self, OracleOutcome::Pass(_))
    }

    /// The first violation's kind, when failing (the shrinker's key).
    pub fn primary_kind(&self) -> Option<CheckKind> {
        match self {
            OracleOutcome::Fail { violations, .. } => violations.first().map(|v| v.kind),
            _ => None,
        }
    }

    /// True when failing with at least one violation of `kind`.
    pub fn has_kind(&self, kind: CheckKind) -> bool {
        match self {
            OracleOutcome::Fail { violations, .. } => violations.iter().any(|v| v.kind == kind),
            _ => false,
        }
    }
}

/// How one mapper invocation ended.
enum MapperRun<T> {
    Ok(T),
    Error(String),
    Panic(String),
    Cancelled,
}

/// Runs `f` under `catch_unwind`, classifying panics and cancellation.
fn guarded<T>(f: impl FnOnce() -> Result<T, TurboMapError>) -> MapperRun<T> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(Ok(v)) => MapperRun::Ok(v),
        Ok(Err(TurboMapError::Cancelled)) => MapperRun::Cancelled,
        Ok(Err(e)) => MapperRun::Error(e.to_string()),
        Err(payload) => {
            // A deadline can surface as a panic deep in a sweep; treat a
            // tripped token as cancellation, not as a mapper bug.
            if engine::cancel::cancelled() {
                return MapperRun::Cancelled;
            }
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            MapperRun::Panic(msg)
        }
    }
}

/// Checks one mapped circuit against the source: structure, K bound,
/// sequential equivalence.
fn check_mapped(
    source: &Circuit,
    mapped: &Circuit,
    flow: &'static str,
    cfg: &OracleConfig,
    violations: &mut Vec<Violation>,
) {
    if let Err(e) = netlist::validate(mapped) {
        violations.push(Violation {
            kind: CheckKind::StructuralInvalid,
            flow,
            detail: format!("mapped circuit invalid: {e}"),
        });
        return;
    }
    if let Err(e) = netlist::check_k_bounded(mapped, cfg.k) {
        violations.push(Violation {
            kind: CheckKind::StructuralInvalid,
            flow,
            detail: format!("mapped circuit breaks K={}: {e}", cfg.k),
        });
    }
    match random_equiv_mode(
        source,
        mapped,
        cfg.equiv_vectors,
        cfg.equiv_seed,
        EquivMode::Compatibility,
    ) {
        Ok(EquivResult::Equivalent) => {}
        Ok(EquivResult::Different(ce)) => {
            // Counterexamples are rare, so replaying the witness lane on
            // the scalar simulator is free in aggregate — and it pins the
            // vector engine: a witness the scalar engine accepts means
            // the two simulators disagree, which is a bug in the engines,
            // not the mappers.
            match netlist::sequence_equiv_mode(source, mapped, &ce.inputs, EquivMode::Compatibility)
            {
                Ok(EquivResult::Equivalent) => violations.push(Violation {
                    kind: CheckKind::SimDivergence,
                    flow,
                    detail: format!(
                        "vector counterexample (output `{}`, cycle {}) \
                         does not reproduce on the scalar simulator",
                        ce.output, ce.cycle
                    ),
                }),
                Ok(EquivResult::Different(_)) => {}
                Err(e) => violations.push(Violation {
                    kind: CheckKind::SimDivergence,
                    flow,
                    detail: format!("scalar replay of the counterexample failed to run: {e}"),
                }),
            }
            violations.push(Violation {
                kind: CheckKind::Equivalence,
                flow,
                detail: format!(
                    "output `{}` diverged at cycle {}: expected {:?}, got {:?}",
                    ce.output, ce.cycle, ce.expected, ce.actual
                ),
            });
        }
        Err(e) => violations.push(Violation {
            kind: CheckKind::Equivalence,
            flow,
            detail: format!("equivalence check failed to run: {e}"),
        }),
    }
}

/// The same-stimulus scalar/vector differential behind
/// [`CheckKind::SimDivergence`], exposed for focused tests: drives one
/// reproducible three-valued input sequence (defined bits with a sprinkle
/// of `X`) through the scalar [`netlist::Simulator`] and, splatted across
/// all lanes, through the [`netlist::VecSimulator`], comparing every PO
/// word bit-for-bit each cycle. Costs one short scalar run per case —
/// cheap against the mapper work — and keeps the fuzz campaign a standing
/// differential test of the vector engine. Returns the first mismatch's
/// description, `None` when the engines agree.
pub fn sim_cross_check_violation(source: &Circuit, cfg: &OracleConfig) -> Option<String> {
    use netlist::{Bit, Planes, Simulator, VecSimulator};
    let m = source.inputs().len();
    let cycles = cfg.equiv_vectors.clamp(1, 32);
    let mut rng = engine::Rng64::new(cfg.equiv_seed ^ 0x51AC_C05C);
    let mut scalar = match Simulator::new(source) {
        Ok(s) => s,
        Err(e) => return Some(format!("scalar simulator rejected the case: {e}")),
    };
    let mut vector = match VecSimulator::new(source) {
        Ok(s) => s,
        Err(e) => return Some(format!("vector simulator rejected the case: {e}")),
    };
    for cycle in 0..cycles {
        let inputs: Vec<Bit> = (0..m)
            .map(|_| {
                let r = rng.next_u64();
                // 1-in-8 X so the third value exercises the bitplanes.
                if r & 7 == 7 {
                    Bit::X
                } else {
                    Bit::from_bool(r & 1 == 1)
                }
            })
            .collect();
        let planes: Vec<Planes> = inputs.iter().map(|&b| Planes::splat(b)).collect();
        let scalar_out = match scalar.step(&inputs) {
            Ok(o) => o,
            Err(e) => return Some(format!("scalar step failed at cycle {cycle}: {e}")),
        };
        let vector_out = match vector.step(&planes) {
            Ok(o) => o,
            Err(e) => return Some(format!("vector step failed at cycle {cycle}: {e}")),
        };
        for (po, (&s, &v)) in scalar_out.iter().zip(vector_out.iter()).enumerate() {
            // Splatted inputs must yield a splatted output: all 64 lanes
            // carry the scalar verdict.
            if v != Planes::splat(s) {
                return Some(format!(
                    "output `{}` cycle {cycle}: scalar {:?} but vector planes \
                     p0={:#018x} p1={:#018x}",
                    source.node(source.outputs()[po]).name(),
                    s,
                    v.p0,
                    v.p1
                ));
            }
        }
    }
    None
}

/// Judges one *mapped result* against its source, exactly as the full
/// oracle does per flow: structural validity, the K bound, sequential
/// equivalence under Compatibility. Public so fault-injection tests (and
/// external harnesses) can audit a single circuit pair without rerunning
/// the mappers.
pub fn judge_mapped(
    source: &Circuit,
    mapped: &Circuit,
    flow: &'static str,
    cfg: &OracleConfig,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    check_mapped(source, mapped, flow, cfg, &mut violations);
    violations
}

/// The round-trip judgement behind [`CheckKind::RoundTrip`], exposed
/// for focused tests: writes `source` with `blifio::write_circuit`,
/// re-reads with both front-ends, and checks (a) the streaming reader
/// and the old reader produce structurally identical circuits, (b) the
/// re-read circuit is sequentially equivalent to the source, (c) the
/// interface and register totals survive. Returns the first failure's
/// description, `None` when the case round-trips.
pub fn round_trip_violation(source: &Circuit, cfg: &OracleConfig) -> Option<String> {
    let text = blifio::write_circuit(source);
    let reread = match blifio::read_circuit_str(&text) {
        Ok(c) => c,
        Err(e) => return Some(format!("re-parse of written BLIF failed: {e}")),
    };
    let oracle = match netlist::parse_blif(&text) {
        Ok(c) => c,
        Err(e) => return Some(format!("old reader rejected the written BLIF: {e}")),
    };
    if let Some(d) = blifio::structural_diff(&oracle, &reread) {
        return Some(format!(
            "streaming reader disagrees with the old reader: {d}"
        ));
    }
    if source.inputs().len() != reread.inputs().len()
        || source.outputs().len() != reread.outputs().len()
        || source.ff_count_total() != reread.ff_count_total()
    {
        return Some(format!(
            "interface drifted: PI {}->{}, PO {}->{}, FF {}->{}",
            source.inputs().len(),
            reread.inputs().len(),
            source.outputs().len(),
            reread.outputs().len(),
            source.ff_count_total(),
            reread.ff_count_total()
        ));
    }
    match random_equiv_mode(
        source,
        &reread,
        cfg.equiv_vectors,
        cfg.equiv_seed,
        EquivMode::Conformance,
    ) {
        Ok(EquivResult::Equivalent) => None,
        Ok(EquivResult::Different(ce)) => Some(format!(
            "re-read circuit diverged at output `{}`, cycle {}",
            ce.output, ce.cycle
        )),
        Err(e) => Some(format!("round-trip equivalence check failed to run: {e}")),
    }
}

/// The certificate judgement behind [`CheckKind::CertificateCheck`],
/// exposed for focused tests: re-maps `source` with `report::explain`,
/// checks the resulting Φ against `expected_phi` (the oracle's own
/// TurboMap-frt run), renders the `turbomap-report/v1` document and
/// replays it through the independent checker. Timing attribution must
/// always verify; the Φ−1 witness may be legitimately unavailable (a
/// non-simple solution beat the probe, or a horizon cap fired), which
/// the checker reports as a verdict rather than an error. Returns the
/// first failure's description, `None` when the certificate holds or
/// the run was cancelled (the caller re-checks the token).
pub fn certificate_violation(
    source: &Circuit,
    expected_phi: u64,
    cfg: &OracleConfig,
) -> Option<String> {
    let explained = match report::explain(source, Options::with_k(cfg.k)) {
        Ok(e) => e,
        Err(report::ReportError::Cancelled) => return None,
        Err(e) => return Some(format!("explain failed: {e}")),
    };
    if explained.result.period != expected_phi {
        return Some(format!(
            "explain mapped Φ = {} but the oracle's run mapped Φ = {expected_phi}",
            explained.result.period
        ));
    }
    let doc = explained.to_json().render_pretty();
    let parsed = match engine::JsonValue::parse(&doc) {
        Ok(p) => p,
        Err(e) => return Some(format!("rendered report does not re-parse: {e}")),
    };
    match report::verify(&parsed, source, &explained.result.circuit) {
        Ok(_) => None,
        Err(e) => Some(format!("independent checker rejected the report: {e}")),
    }
}

/// The partition judgement behind [`CheckKind::PartitionCheck`],
/// exposed for focused tests: maps `source` through
/// `partition::partition_map` with `cfg.partitions` blocks and checks
/// (a) the stitched circuit is structurally valid and K-bounded,
/// (b) its measured clock period agrees with the report, (c) its Φ
/// does not beat `expected_phi` (the oracle's own monolithic
/// TurboMap-frt run — optimal over forward retimings, so a "better"
/// partitioned Φ means a broken period measurement or an illegal
/// stitch), and (d) it is sequentially equivalent to the source under
/// Compatibility. Returns the first failure's description, `None` when
/// the check holds or the run was cancelled (the caller re-checks the
/// token).
pub fn partition_violation(
    source: &Circuit,
    expected_phi: u64,
    cfg: &OracleConfig,
) -> Option<String> {
    let popts = partition::PartitionOptions::new(cfg.k, cfg.partitions);
    let mapped = match partition::partition_map(source, &popts) {
        Ok(m) => m,
        Err(e) => {
            if engine::cancel::cancelled() {
                return None;
            }
            return Some(format!("partition_map failed: {e}"));
        }
    };
    if let Err(e) = netlist::validate(&mapped.circuit) {
        return Some(format!("stitched circuit invalid: {e}"));
    }
    if let Err(e) = netlist::check_k_bounded(&mapped.circuit, cfg.k) {
        return Some(format!("stitched circuit breaks K={}: {e}", cfg.k));
    }
    match mapped.circuit.clock_period() {
        Ok(p) if p == mapped.report.phi => {}
        Ok(p) => {
            return Some(format!(
                "report says Φ = {} but the stitched circuit measures Φ = {p}",
                mapped.report.phi
            ))
        }
        Err(e) => return Some(format!("stitched circuit has no clock period: {e}")),
    }
    if mapped.report.phi < expected_phi {
        return Some(format!(
            "partitioned Φ = {} beats the monolithic optimum Φ = {expected_phi} \
             (frozen seams cannot gain retiming freedom)",
            mapped.report.phi
        ));
    }
    match random_equiv_mode(
        source,
        &mapped.circuit,
        cfg.equiv_vectors,
        cfg.equiv_seed,
        EquivMode::Compatibility,
    ) {
        Ok(EquivResult::Equivalent) => None,
        Ok(EquivResult::Different(ce)) => Some(format!(
            "stitched circuit diverged at output `{}`, cycle {}: expected {:?}, got {:?}",
            ce.output, ce.cycle, ce.expected, ce.actual
        )),
        Err(e) => Some(format!("partition equivalence check failed to run: {e}")),
    }
}

/// Judges one case. `source` must pass [`netlist::validate`] and be
/// sharing-consistent (the generator guarantees both; the shrinker
/// re-checks both on every candidate) — a source that already carries a
/// register-sharing conflict would trip the initial-state check through
/// no fault of the mappers.
pub fn run_oracle(source: &Circuit, cfg: &OracleConfig) -> OracleOutcome {
    if engine::cancel::cancelled() {
        return OracleOutcome::Cancelled;
    }
    let mut violations = Vec::new();
    let mut stats = CaseStats::default();

    // Check 0: BLIF round-trip. Write the case with the new writer and
    // re-read it with the streaming reader. The writer materialises PO
    // buffers, so the re-read circuit is *behaviourally* — not node-
    // for-node — identical to the source; the structural-equality claim
    // is against the old reader on the same bytes (the two front-ends
    // must agree on every generated case). Cheap, so it runs first.
    match catch_unwind(AssertUnwindSafe(|| round_trip_violation(source, cfg))) {
        Ok(Some(detail)) => violations.push(Violation {
            kind: CheckKind::RoundTrip,
            flow: "blifio",
            detail,
        }),
        Ok(None) => {}
        Err(_) => {
            if engine::cancel::cancelled() {
                return OracleOutcome::Cancelled;
            }
            violations.push(Violation {
                kind: CheckKind::RoundTrip,
                flow: "blifio",
                detail: "panic while round-tripping the case".to_string(),
            });
        }
    }

    // Check 0.5: scalar/vector engine agreement on the source. Every
    // later equivalence verdict rides on the vector engine, so pin it
    // against the scalar oracle before trusting anything downstream.
    match catch_unwind(AssertUnwindSafe(|| sim_cross_check_violation(source, cfg))) {
        Ok(Some(detail)) => violations.push(Violation {
            kind: CheckKind::SimDivergence,
            flow: "oracle",
            detail,
        }),
        Ok(None) => {}
        Err(_) => {
            if engine::cancel::cancelled() {
                return OracleOutcome::Cancelled;
            }
            violations.push(Violation {
                kind: CheckKind::SimDivergence,
                flow: "oracle",
                detail: "panic while cross-checking the simulators".to_string(),
            });
        }
    }

    // FlowMap-frt needs a K-bounded input; `prepare` is the shared
    // validate + prune + decompose pipeline the TurboMap drivers use.
    let bounded = match catch_unwind(AssertUnwindSafe(|| turbomap::prepare(source, cfg.k))) {
        Ok(Ok(b)) => Some(b),
        Ok(Err(e)) => {
            violations.push(Violation {
                kind: CheckKind::MapperError,
                flow: "prepare",
                detail: e.to_string(),
            });
            None
        }
        Err(_) => {
            if engine::cancel::cancelled() {
                return OracleOutcome::Cancelled;
            }
            violations.push(Violation {
                kind: CheckKind::MapperPanic,
                flow: "prepare",
                detail: "panic while preparing the case".to_string(),
            });
            None
        }
    };

    let fm = bounded
        .as_ref()
        .map(|b| guarded(|| flowmap::flowmap_frt(b, cfg.k).map_err(TurboMapError::Baseline)));
    let opts = Options::with_k(cfg.k);
    let frt = guarded(|| turbomap::turbomap_frt(source, opts));
    let general = guarded(|| turbomap::turbomap_general(source, opts));

    // Cancellation anywhere voids the whole judgement.
    for run in [&frt, &general] {
        if matches!(run, MapperRun::Cancelled) {
            return OracleOutcome::Cancelled;
        }
    }
    if matches!(fm, Some(MapperRun::Cancelled)) {
        return OracleOutcome::Cancelled;
    }

    let mut note = |kind: CheckKind, flow: &'static str, detail: String| {
        violations.push(Violation { kind, flow, detail });
    };

    let fm_res = match fm {
        Some(MapperRun::Ok(r)) => {
            stats.flowmap_frt = Some((r.period, r.luts));
            Some(r)
        }
        Some(MapperRun::Error(e)) => {
            note(CheckKind::MapperError, "flowmap-frt", e);
            None
        }
        Some(MapperRun::Panic(e)) => {
            note(CheckKind::MapperPanic, "flowmap-frt", e);
            None
        }
        _ => None,
    };
    let frt_res = match frt {
        MapperRun::Ok(r) => {
            stats.turbomap_frt = Some((r.period, r.luts));
            Some(r)
        }
        MapperRun::Error(e) => {
            note(CheckKind::MapperError, "turbomap-frt", e);
            None
        }
        MapperRun::Panic(e) => {
            note(CheckKind::MapperPanic, "turbomap-frt", e);
            None
        }
        MapperRun::Cancelled => unreachable!("handled above"),
    };
    let gen_res: Option<TurboMapResult> = match general {
        MapperRun::Ok(r) => {
            stats.turbomap_general = Some((r.period, r.luts));
            stats.general_star = r.star();
            Some(r)
        }
        MapperRun::Error(e) => {
            note(CheckKind::MapperError, "turbomap", e);
            None
        }
        MapperRun::Panic(e) => {
            note(CheckKind::MapperPanic, "turbomap", e);
            None
        }
        MapperRun::Cancelled => unreachable!("handled above"),
    };

    // Check 1: Φ ordering.
    if let (Some(frt), Some(fm)) = (&frt_res, &fm_res) {
        if frt.period > fm.period {
            note(
                CheckKind::PhiOrdering,
                "oracle",
                format!(
                    "Φ(TurboMap-frt) = {} > Φ(FlowMap-frt) = {}",
                    frt.period, fm.period
                ),
            );
        }
    }
    if let (Some(gen), Some(frt)) = (&gen_res, &frt_res) {
        if gen.period > frt.period {
            note(
                CheckKind::PhiOrdering,
                "oracle",
                format!(
                    "Φ(TurboMap) = {} > Φ(TurboMap-frt) = {}",
                    gen.period, frt.period
                ),
            );
        }
    }

    // Check 3: initial-state computability of the forward-retimed flows.
    if let Some(frt) = &frt_res {
        if frt.initial_state_lost {
            note(
                CheckKind::InitialState,
                "turbomap-frt",
                "forward-retimed flow lost its initial state".to_string(),
            );
        }
        if frt.sharing_conflict {
            note(
                CheckKind::InitialState,
                "turbomap-frt",
                "register-sharing conflict in a forward-retimed flow".to_string(),
            );
        }
    }
    if let Some(fm) = &fm_res {
        if !fm.circuit.sharing_consistent() {
            note(
                CheckKind::InitialState,
                "flowmap-frt",
                "register-sharing conflict in a forward-retimed flow".to_string(),
            );
        }
    }

    // Check 2: sequential equivalence of every usable mapped result.
    if let Some(fm) = &fm_res {
        check_mapped(source, &fm.circuit, "flowmap-frt", cfg, &mut violations);
    }
    if let Some(frt) = &frt_res {
        check_mapped(source, &frt.circuit, "turbomap-frt", cfg, &mut violations);
    }
    if let Some(gen) = &gen_res {
        if !gen.star() {
            check_mapped(source, &gen.circuit, "turbomap", cfg, &mut violations);
        }
    }

    // Check 4: byte-determinism of TurboMap-frt across sweep workers.
    if cfg.alt_sweep_workers > 1 {
        if let Some(frt) = &frt_res {
            let mut alt_opts = opts;
            alt_opts.sweep_workers = cfg.alt_sweep_workers;
            match guarded(|| turbomap::turbomap_frt(source, alt_opts)) {
                MapperRun::Ok(alt) => {
                    if netlist::write_blif(&alt.circuit) != netlist::write_blif(&frt.circuit) {
                        violations.push(Violation {
                            kind: CheckKind::Determinism,
                            flow: "turbomap-frt",
                            detail: format!(
                                "BLIF differs between sweep_workers=1 and sweep_workers={}",
                                cfg.alt_sweep_workers
                            ),
                        });
                    }
                }
                MapperRun::Error(e) => violations.push(Violation {
                    kind: CheckKind::Determinism,
                    flow: "turbomap-frt",
                    detail: format!(
                        "sweep_workers={} run errored where serial succeeded: {e}",
                        cfg.alt_sweep_workers
                    ),
                }),
                MapperRun::Panic(e) => violations.push(Violation {
                    kind: CheckKind::Determinism,
                    flow: "turbomap-frt",
                    detail: format!(
                        "sweep_workers={} run panicked where serial succeeded: {e}",
                        cfg.alt_sweep_workers
                    ),
                }),
                MapperRun::Cancelled => return OracleOutcome::Cancelled,
            }
        }
    }

    // Check 5: Φ-optimality certificates. The explain pipeline re-maps
    // the case; its report must replay through the independent checker
    // and agree with the oracle's own TurboMap-frt period.
    if cfg.certificates {
        if let Some(frt) = &frt_res {
            match catch_unwind(AssertUnwindSafe(|| {
                certificate_violation(source, frt.period, cfg)
            })) {
                Ok(Some(detail)) => violations.push(Violation {
                    kind: CheckKind::CertificateCheck,
                    flow: "turbomap-frt",
                    detail,
                }),
                Ok(None) => {}
                Err(_) => {
                    if engine::cancel::cancelled() {
                        return OracleOutcome::Cancelled;
                    }
                    violations.push(Violation {
                        kind: CheckKind::CertificateCheck,
                        flow: "turbomap-frt",
                        detail: "panic while extracting or checking the certificate".to_string(),
                    });
                }
            }
        }
    }

    // Check 6: partition-and-conquer cross-check. The case is mapped a
    // second way — split at FF boundaries, per-block TurboMap-frt,
    // stitched — and the two mappings judge each other: sequential
    // equivalence plus the Φ-gap bound (partitioned ≥ monolithic).
    if cfg.partitions >= 2 {
        if let Some(frt) = &frt_res {
            match catch_unwind(AssertUnwindSafe(|| {
                partition_violation(source, frt.period, cfg)
            })) {
                Ok(Some(detail)) => violations.push(Violation {
                    kind: CheckKind::PartitionCheck,
                    flow: "partition",
                    detail,
                }),
                Ok(None) => {}
                Err(_) => {
                    if engine::cancel::cancelled() {
                        return OracleOutcome::Cancelled;
                    }
                    violations.push(Violation {
                        kind: CheckKind::PartitionCheck,
                        flow: "partition",
                        detail: "panic while partition-mapping the case".to_string(),
                    });
                }
            }
        }
    }

    if engine::cancel::cancelled() {
        return OracleOutcome::Cancelled;
    }
    if violations.is_empty() {
        OracleOutcome::Pass(stats)
    } else {
        OracleOutcome::Fail { violations, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_case, GenConfig};

    #[test]
    fn clean_cases_pass() {
        let gen_cfg = GenConfig {
            k: 4,
            max_gates: 40,
            max_mutations: 6,
        };
        let cfg = OracleConfig {
            equiv_vectors: 32,
            ..OracleConfig::default()
        };
        for seed in 0..6 {
            let c = generate_case(seed, &gen_cfg);
            let out = run_oracle(&c, &cfg);
            match &out {
                OracleOutcome::Pass(stats) => {
                    assert!(stats.turbomap_frt.is_some());
                    assert!(stats.flowmap_frt.is_some());
                }
                OracleOutcome::Fail { violations, .. } => {
                    panic!("seed {seed} failed: {violations:?}")
                }
                OracleOutcome::Cancelled => panic!("not cancelled"),
            }
        }
    }

    #[test]
    fn cancelled_token_yields_cancelled_not_failure() {
        let token = engine::CancelToken::new();
        token.cancel();
        let _guard = engine::cancel::install(token);
        let c = generate_case(1, &GenConfig::default());
        assert!(matches!(
            run_oracle(&c, &OracleConfig::default()),
            OracleOutcome::Cancelled
        ));
    }

    #[test]
    fn kind_names_are_stable() {
        for (kind, name) in [
            (CheckKind::PhiOrdering, "phi_ordering"),
            (CheckKind::Equivalence, "equivalence"),
            (CheckKind::InitialState, "initial_state"),
            (CheckKind::Determinism, "determinism"),
            (CheckKind::MapperError, "mapper_error"),
            (CheckKind::MapperPanic, "mapper_panic"),
            (CheckKind::StructuralInvalid, "structural_invalid"),
            (CheckKind::RoundTrip, "round_trip"),
            (CheckKind::CertificateCheck, "certificate_check"),
            (CheckKind::SimDivergence, "sim_divergence"),
            (CheckKind::PartitionCheck, "partition_check"),
        ] {
            assert_eq!(kind.name(), name);
        }
    }

    /// With the partition cross-check enabled, clean generated cases
    /// still pass: every case maps both monolithically and with two
    /// blocks, and the stitched result holds the oracle's invariants.
    #[test]
    fn partition_check_passes_on_clean_cases() {
        let gen_cfg = GenConfig {
            k: 4,
            max_gates: 40,
            max_mutations: 6,
        };
        let cfg = OracleConfig {
            equiv_vectors: 16,
            alt_sweep_workers: 0,
            partitions: 2,
            ..OracleConfig::default()
        };
        for seed in 0..4 {
            let c = generate_case(seed, &gen_cfg);
            let out = run_oracle(&c, &cfg);
            if let OracleOutcome::Fail { violations, .. } = &out {
                panic!("seed {seed} failed: {violations:?}");
            }
        }
    }

    #[test]
    fn engines_agree_on_generated_cases() {
        // The same judgement as the oracle's check 0.5, over a wider
        // seed range than the full-oracle test can afford.
        let gen_cfg = GenConfig {
            k: 4,
            max_gates: 60,
            max_mutations: 8,
        };
        let cfg = OracleConfig::default();
        for seed in 0..32 {
            let c = generate_case(seed, &gen_cfg);
            if let Some(detail) = sim_cross_check_violation(&c, &cfg) {
                panic!("seed {seed}: {detail}");
            }
        }
    }

    /// With certificates enabled, clean generated cases still pass: the
    /// explain pipeline agrees with the oracle's own run and every
    /// rendered report replays through the independent checker.
    #[test]
    fn certificate_check_passes_on_clean_cases() {
        let gen_cfg = GenConfig {
            k: 4,
            max_gates: 40,
            max_mutations: 6,
        };
        let cfg = OracleConfig {
            equiv_vectors: 16,
            alt_sweep_workers: 0,
            certificates: true,
            ..OracleConfig::default()
        };
        for seed in 0..4 {
            let c = generate_case(seed, &gen_cfg);
            let out = run_oracle(&c, &cfg);
            if let OracleOutcome::Fail { violations, .. } = &out {
                panic!("seed {seed} failed: {violations:?}");
            }
        }
    }

    #[test]
    fn generated_cases_round_trip_through_the_front_end() {
        // The same judgement as the oracle's check 0, over a wider seed
        // range than the full-oracle test can afford.
        let gen_cfg = GenConfig {
            k: 4,
            max_gates: 60,
            max_mutations: 8,
        };
        let cfg = OracleConfig {
            equiv_vectors: 32,
            ..OracleConfig::default()
        };
        for seed in 0..32 {
            let c = generate_case(seed, &gen_cfg);
            if let Some(detail) = round_trip_violation(&c, &cfg) {
                panic!("seed {seed}: {detail}");
            }
        }
    }
}
