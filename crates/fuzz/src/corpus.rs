//! Repro persistence: failing cases as BLIF + JSON manifest.
//!
//! Every oracle failure is archived under the corpus directory as
//!
//! ```text
//! <corpus>/<case-name>/
//!   manifest.json   — schema `turbomap-fuzz/repro/v1`
//!   original.blif   — the generated case as judged
//!   repro.blif      — the shrinker's minimized version (== original when
//!                     shrinking was disabled or made no progress)
//! ```
//!
//! The manifest records the generator seed and config, the oracle config
//! and the verdict, so `generate_case(seed, config)` regenerates the
//! exact original and the oracle re-judges it identically. CI uploads the
//! whole directory as an artifact when the fuzz-smoke job fails.

use crate::oracle::Violation;
use engine::JsonValue;
use netlist::Circuit;
use std::io;
use std::path::{Path, PathBuf};

/// Schema tag of the repro manifest.
pub const MANIFEST_SCHEMA: &str = "turbomap-fuzz/repro/v1";

/// Everything a manifest records about one failing case.
#[derive(Debug, Clone)]
pub struct ReproMeta {
    /// Campaign seed the case came from.
    pub campaign_seed: u64,
    /// Case index within the campaign seed.
    pub case_index: usize,
    /// The derived per-case generator seed.
    pub case_seed: u64,
    /// LUT bound K.
    pub k: usize,
    /// Generator gate bound.
    pub max_gates: usize,
    /// Generator mutation bound.
    pub max_mutations: usize,
    /// Equivalence-check vector count.
    pub equiv_vectors: usize,
    /// Equivalence-check seed.
    pub equiv_seed: u64,
    /// Accepted shrink steps (0 when shrinking was off or stuck).
    pub shrink_steps: usize,
}

fn circuit_stats(c: &Circuit) -> JsonValue {
    JsonValue::object(vec![
        ("gates", JsonValue::UInt(c.num_gates() as u64)),
        ("ffs", JsonValue::UInt(c.ff_count_total() as u64)),
        ("inputs", JsonValue::UInt(c.inputs().len() as u64)),
        ("outputs", JsonValue::UInt(c.outputs().len() as u64)),
    ])
}

/// Renders the manifest JSON for a failing case.
pub fn manifest(
    meta: &ReproMeta,
    violations: &[Violation],
    original: &Circuit,
    repro: &Circuit,
) -> JsonValue {
    JsonValue::object(vec![
        ("schema", JsonValue::str(MANIFEST_SCHEMA)),
        ("campaign_seed", JsonValue::UInt(meta.campaign_seed)),
        ("case_index", JsonValue::UInt(meta.case_index as u64)),
        ("case_seed", JsonValue::UInt(meta.case_seed)),
        (
            "config",
            JsonValue::object(vec![
                ("k", JsonValue::UInt(meta.k as u64)),
                ("max_gates", JsonValue::UInt(meta.max_gates as u64)),
                ("max_mutations", JsonValue::UInt(meta.max_mutations as u64)),
                ("equiv_vectors", JsonValue::UInt(meta.equiv_vectors as u64)),
                ("equiv_seed", JsonValue::UInt(meta.equiv_seed)),
            ]),
        ),
        (
            "verdict",
            JsonValue::Array(
                violations
                    .iter()
                    .map(|v| {
                        JsonValue::object(vec![
                            ("kind", JsonValue::str(v.kind.name())),
                            ("flow", JsonValue::str(v.flow)),
                            ("detail", JsonValue::str(v.detail.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("shrink_steps", JsonValue::UInt(meta.shrink_steps as u64)),
        ("original", circuit_stats(original)),
        ("repro", circuit_stats(repro)),
    ])
}

/// Writes one failing case into `corpus_dir/<case_name>/`; returns the
/// case directory.
pub fn write_repro(
    corpus_dir: &Path,
    case_name: &str,
    meta: &ReproMeta,
    violations: &[Violation],
    original: &Circuit,
    repro: &Circuit,
) -> io::Result<PathBuf> {
    let dir = corpus_dir.join(case_name);
    std::fs::create_dir_all(&dir)?;
    std::fs::write(dir.join("original.blif"), netlist::write_blif(original))?;
    std::fs::write(dir.join("repro.blif"), netlist::write_blif(repro))?;
    std::fs::write(
        dir.join("manifest.json"),
        manifest(meta, violations, original, repro).render_pretty(),
    )?;
    Ok(dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::CheckKind;
    use netlist::TruthTable;

    fn tiny() -> Circuit {
        let mut c = Circuit::new("tiny");
        let a = c.add_input("a").unwrap();
        let g = c.add_gate("g", TruthTable::not()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g, vec![]).unwrap();
        c.connect(g, o, vec![netlist::Bit::Zero]).unwrap();
        c
    }

    fn meta() -> ReproMeta {
        ReproMeta {
            campaign_seed: 5,
            case_index: 3,
            case_seed: 0xDEAD,
            k: 4,
            max_gates: 120,
            max_mutations: 12,
            equiv_vectors: 64,
            equiv_seed: 7,
            shrink_steps: 2,
        }
    }

    #[test]
    fn manifest_roundtrips_and_carries_verdict() {
        let c = tiny();
        let v = vec![Violation {
            kind: CheckKind::Equivalence,
            flow: "turbomap-frt",
            detail: "output `o` diverged at cycle 0".into(),
        }];
        let m = manifest(&meta(), &v, &c, &c);
        let parsed = JsonValue::parse(&m.render()).unwrap();
        assert_eq!(
            parsed.get("schema").unwrap().as_str(),
            Some(MANIFEST_SCHEMA)
        );
        assert_eq!(parsed.get("campaign_seed").unwrap().as_u64(), Some(5));
        let verdict = parsed.get("verdict").unwrap().as_array().unwrap();
        assert_eq!(
            verdict[0].get("kind").unwrap().as_str(),
            Some("equivalence")
        );
        assert_eq!(
            parsed
                .get("original")
                .unwrap()
                .get("gates")
                .unwrap()
                .as_u64(),
            Some(1)
        );
    }

    #[test]
    fn write_repro_creates_all_three_files() {
        let c = tiny();
        let dir =
            std::env::temp_dir().join(format!("tmfrt-fuzz-corpus-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let case_dir = write_repro(&dir, "case-5-3", &meta(), &[], &c, &c).unwrap();
        for f in ["manifest.json", "original.blif", "repro.blif"] {
            assert!(case_dir.join(f).is_file(), "{f} missing");
        }
        let blif = std::fs::read_to_string(case_dir.join("repro.blif")).unwrap();
        // The BLIF round-trip may insert latch buffers; only require that
        // the archived repro parses back into a valid circuit.
        let parsed = netlist::parse_blif(&blif).unwrap();
        netlist::validate(&parsed).unwrap();
        assert!(parsed.num_gates() >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
