//! Structural mutation operators (apply–validate–revert).
//!
//! Each operator builds its candidate on a clone and commits only when
//! [`netlist::validate`] accepts the result, so a mutated case is always
//! mappable. Operators never need to *preserve behaviour* — the oracle
//! compares each mapped result against the mutated source itself — but
//! [`retime_forward`] does preserve it exactly (it is the paper's forward
//! register move with the Touati–Brayton initial-state update), which
//! makes it a strong structural diversifier: it shifts where registers
//! sit relative to the logic the mappers must cut through.

use engine::Rng64;
use netlist::{Bit, Circuit, EdgeId, NodeId, TruthTable};

/// Applies one randomly chosen operator; returns `true` when a mutation
/// was committed. Operators that find no applicable site are no-ops.
pub fn mutate_random(c: &mut Circuit, rng: &mut Rng64) -> bool {
    match rng.below(4) {
        0 => insert_gate(c, rng),
        1 => rewire_fanin(c, rng),
        2 => retime_forward(c, rng),
        _ => flip_init(c, rng),
    }
}

/// Unique gate name with the given prefix.
fn fresh_name(c: &Circuit, prefix: &str, counter: &mut usize) -> String {
    loop {
        *counter += 1;
        let name = format!("{prefix}{counter}");
        if c.find(&name).is_none() {
            return name;
        }
    }
}

/// Splices a new 2-input gate into a random edge: `u → g(u, pi) → v`,
/// register chain staying on the `g → v` segment (the same always-acyclic
/// construction as `workloads::grow`).
pub fn insert_gate(c: &mut Circuit, rng: &mut Rng64) -> bool {
    if c.num_edges() == 0 || c.inputs().is_empty() {
        return false;
    }
    let mut cand = c.clone();
    let e = EdgeId(rng.below(cand.num_edges()) as u32);
    let u = cand.edge(e).from();
    let pi = cand.inputs()[rng.below(cand.inputs().len())];
    let ops: [fn(usize) -> TruthTable; 3] = [TruthTable::and, TruthTable::or, TruthTable::xor];
    let mut counter = rng.below(1 << 20);
    let name = fresh_name(&cand, "fz", &mut counter);
    let g = match cand.add_gate(name, ops[rng.below(3)](2)) {
        Ok(g) => g,
        Err(_) => return false,
    };
    if cand.connect(u, g, vec![]).is_err() || cand.connect(pi, g, vec![]).is_err() {
        return false;
    }
    if cand.rewire_from(e, g).is_err() {
        return false;
    }
    if netlist::validate(&cand).is_err() || !cand.sharing_consistent() {
        return false;
    }
    *c = cand;
    true
}

/// Rewires one fanin edge to a different driver ("merge": the sink now
/// shares a driver with some other part of the circuit; the old driver's
/// cone may go dead). Combinational-cycle safety: a weight-0 edge may
/// only be rewired to a node with no combinational path from the sink.
pub fn rewire_fanin(c: &mut Circuit, rng: &mut Rng64) -> bool {
    if c.num_edges() == 0 {
        return false;
    }
    let e = EdgeId(rng.below(c.num_edges()) as u32);
    let v = c.edge(e).to();
    let old_from = c.edge(e).from();
    // Candidate drivers: any PI or gate that is not the current driver.
    let safe_from_cycle: Vec<NodeId> = {
        let blocked = if c.edge(e).weight() == 0 {
            comb_descendants(c, v)
        } else {
            // A registered edge cannot close a combinational cycle.
            vec![false; c.num_nodes()]
        };
        c.node_ids()
            .filter(|&x| {
                !c.node(x).is_output() && x != old_from && !blocked[x.index()] && {
                    let n = c.node(x);
                    n.is_input() || n.is_gate()
                }
            })
            .collect()
    };
    if safe_from_cycle.is_empty() {
        return false;
    }
    let new_from = safe_from_cycle[rng.below(safe_from_cycle.len())];
    let mut cand = c.clone();
    if cand.rewire_from(e, new_from).is_err() {
        return false;
    }
    // The moved chain now shares registers with `new_from`'s other
    // fanouts; drop the mutation if their initial values conflict.
    if netlist::validate(&cand).is_err() || !cand.sharing_consistent() {
        return false;
    }
    *c = cand;
    true
}

/// Nodes reachable from `v` through weight-0 edges (including `v`).
fn comb_descendants(c: &Circuit, v: NodeId) -> Vec<bool> {
    let mut seen = vec![false; c.num_nodes()];
    seen[v.index()] = true;
    let mut stack = vec![v];
    while let Some(x) = stack.pop() {
        for &fe in c.node(x).fanout() {
            let edge = c.edge(fe);
            if edge.weight() == 0 && !seen[edge.to().index()] {
                seen[edge.to().index()] = true;
                stack.push(edge.to());
            }
        }
    }
    seen
}

/// Forward-retimes one register across a random eligible gate **by
/// hand**: every fanin edge gives up its sink-end register, every fanout
/// edge gains one at its source end, and the new registers' initial value
/// is the gate's function evaluated on the removed values (three-valued —
/// exactly the paper's linear-time initial-state computation for forward
/// moves). Behaviour-preserving by the classical retiming argument.
pub fn retime_forward(c: &mut Circuit, rng: &mut Rng64) -> bool {
    let eligible: Vec<NodeId> = c
        .gate_ids()
        .filter(|&g| {
            let n = c.node(g);
            !n.fanin().is_empty()
                && !n.fanout().is_empty()
                && n.fanin().iter().all(|&e| c.edge(e).weight() >= 1)
        })
        .collect();
    if eligible.is_empty() {
        return false;
    }
    let g = eligible[rng.below(eligible.len())];
    let mut cand = c.clone();
    let fanin: Vec<EdgeId> = cand.node(g).fanin().to_vec();
    let fanout: Vec<EdgeId> = cand.node(g).fanout().to_vec();
    // Take the register adjacent to g from each fanin (sink end = last;
    // `ffs[0]` is nearest the source).
    let mut taken = Vec::with_capacity(fanin.len());
    for &e in &fanin {
        match cand.ffs_mut(e).pop() {
            Some(b) => taken.push(b),
            None => return false,
        }
    }
    let value = match cand.node(g).function() {
        Some(tt) => tt.eval3(&taken),
        None => return false,
    };
    // Give each fanout a register adjacent to g (source end = front).
    for &e in &fanout {
        cand.ffs_mut(e).insert(0, value);
    }
    if netlist::validate(&cand).is_err() || !cand.sharing_consistent() {
        return false;
    }
    *c = cand;
    true
}

/// Rewrites one register's initial value to a random bit (including `X`).
/// The register at a given position is shared across the driver's fanout
/// edges, so the new value is written into every chain defining that
/// position — flipping a single edge would create a sharing conflict.
pub fn flip_init(c: &mut Circuit, rng: &mut Rng64) -> bool {
    let registered: Vec<EdgeId> = c.edge_ids().filter(|&e| c.edge(e).weight() >= 1).collect();
    if registered.is_empty() {
        return false;
    }
    let e = registered[rng.below(registered.len())];
    let i = rng.below(c.edge(e).weight());
    let new = match rng.below(3) {
        0 => Bit::Zero,
        1 => Bit::One,
        _ => Bit::X,
    };
    let from = c.edge(e).from();
    let fanout: Vec<EdgeId> = c.node(from).fanout().to_vec();
    for &fe in &fanout {
        if let Some(b) = c.ffs_mut(fe).get_mut(i) {
            *b = new;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{generate_fsm, Encoding, FsmSpec};

    fn base(seed: u64) -> Circuit {
        generate_fsm(&FsmSpec {
            name: format!("m{seed}"),
            states: 6,
            inputs: 3,
            decoded: 2,
            outputs: 2,
            encoding: Encoding::Binary,
            registered_inputs: true,
            seed,
        })
    }

    #[test]
    fn mutations_keep_circuits_valid() {
        let mut rng = Rng64::new(3);
        for seed in 0..8 {
            let mut c = base(seed);
            for _ in 0..40 {
                mutate_random(&mut c, &mut rng);
                netlist::validate(&c).unwrap();
                assert!(c.sharing_consistent(), "seed {seed}: sharing conflict");
            }
        }
    }

    #[test]
    fn insert_gate_adds_exactly_one() {
        let mut rng = Rng64::new(5);
        let mut c = base(1);
        let before = c.num_gates();
        assert!(insert_gate(&mut c, &mut rng));
        assert_eq!(c.num_gates(), before + 1);
        netlist::validate(&c).unwrap();
    }

    #[test]
    fn retime_forward_preserves_behaviour() {
        // Hand forward retiming must be sequentially invisible: the
        // retimed circuit conforms to the original on random sequences.
        let mut rng = Rng64::new(7);
        for seed in 0..6 {
            let original = base(seed);
            let mut retimed = original.clone();
            let mut moved = 0;
            for _ in 0..20 {
                if retime_forward(&mut retimed, &mut rng) {
                    moved += 1;
                }
            }
            if moved == 0 {
                continue;
            }
            let seq = netlist::random_sequence(original.inputs().len(), 48, seed ^ 0xABCD);
            let r = netlist::sequence_equiv_mode(
                &original,
                &retimed,
                &seq,
                netlist::EquivMode::Compatibility,
            )
            .unwrap();
            assert!(
                r.is_equivalent(),
                "seed {seed}: hand retime changed behaviour"
            );
        }
    }

    #[test]
    fn retime_forward_keeps_total_registers_bounded() {
        // Each move removes |fanin| registers and adds |fanout|; with
        // 2-input gates the count can drift, but validity must hold and
        // every fanin of a moved gate must have had weight ≥ 1.
        let mut rng = Rng64::new(11);
        let mut c = base(2);
        for _ in 0..10 {
            retime_forward(&mut c, &mut rng);
        }
        netlist::validate(&c).unwrap();
    }

    #[test]
    fn rewire_never_creates_comb_cycle() {
        let mut rng = Rng64::new(13);
        let mut c = base(3);
        for _ in 0..60 {
            rewire_fanin(&mut c, &mut rng);
            // validate() includes the combinational-cycle check.
            netlist::validate(&c).unwrap();
        }
    }

    #[test]
    fn flip_init_touches_only_registers() {
        let mut rng = Rng64::new(17);
        let mut c = base(4);
        let weights: Vec<usize> = c.edge_ids().map(|e| c.edge(e).weight()).collect();
        for _ in 0..20 {
            flip_init(&mut c, &mut rng);
        }
        let after: Vec<usize> = c.edge_ids().map(|e| c.edge(e).weight()).collect();
        assert_eq!(weights, after, "flip_init must not change weights");
        netlist::validate(&c).unwrap();
    }
}
