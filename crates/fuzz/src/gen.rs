//! Seeded generation of structurally valid sequential netlists.
//!
//! Every case starts from a cyclic FSM core ([`workloads::generate_fsm`]
//! — guaranteed valid, fully defined initial state, feedback through the
//! state registers), is optionally grown toward a gate/depth target with
//! live 2-input gates ([`workloads::grow`]), then diversified:
//!
//! 1. **initial-state shaping** — register initial values are flipped or
//!    erased to `X` with seeded probabilities, producing the full/partial/
//!    unknown initial-state spectrum of the paper's Section 3.3;
//! 2. **structural mutations** — a seeded number of [`crate::mutate`]
//!    operators (insert / rewire / hand-retime / init-flip), each applied
//!    under apply–validate–revert so the case stays valid.
//!
//! Generation is a pure function of `(seed, config)`: a repro manifest
//! holding those two values regenerates the exact case.

use engine::Rng64;
use netlist::{Bit, Circuit};
use workloads::{generate_fsm, grow, Encoding, FsmSpec};

/// Knobs bounding the generated cases.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// LUT input bound the case will be mapped with (gates stay 2-input;
    /// kept here so a manifest captures the whole mapping config).
    pub k: usize,
    /// Upper bound on the gate count after growth.
    pub max_gates: usize,
    /// Upper bound on the number of structural mutations.
    pub max_mutations: usize,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            k: 4,
            max_gates: 120,
            max_mutations: 12,
        }
    }
}

/// Generates one structurally valid case from a seed.
///
/// The result always passes [`netlist::validate`]; gate fanin is ≤ 2 by
/// construction (the mappers decompose anyway, but small fanin keeps the
/// mapping interesting at K = 3..5).
pub fn generate_case(seed: u64, cfg: &GenConfig) -> Circuit {
    let mut rng = Rng64::new(seed ^ 0xF022_CA5E_0000_0001);
    let mut spec = FsmSpec {
        name: format!("fuzz{seed:016x}"),
        states: rng.range_usize(2, 12),
        inputs: rng.range_usize(1, 4),
        decoded: rng.range_usize(1, 2),
        outputs: rng.range_usize(1, 3),
        encoding: if rng.chance(0.5) {
            Encoding::OneHot
        } else {
            Encoding::Binary
        },
        registered_inputs: rng.chance(0.5),
        seed: rng.next_u64(),
    };
    let mut base = generate_fsm(&spec);
    // A wide one-hot FSM can overshoot the gate bound on its own; shrink
    // the state count (deterministically) until the core fits.
    while base.num_gates() > cfg.max_gates && spec.states > 2 {
        spec.states -= 1;
        base = generate_fsm(&spec);
    }
    // Growth: sometimes map the bare FSM, usually a grown one.
    let mut c = if rng.chance(0.8) && base.num_gates() < cfg.max_gates {
        let target = rng.range_usize(base.num_gates(), cfg.max_gates.max(base.num_gates() + 1));
        let depth = rng.range_usize(2, 10) as u64;
        // The FSM base is valid by construction, so growth cannot fail;
        // fall back to the base defensively rather than panicking inside
        // a fuzz job.
        grow(&base, target, depth, rng.next_u64()).unwrap_or(base)
    } else {
        base
    };
    shape_initial_state(&mut c, &mut rng);
    let n_mut = rng.below(cfg.max_mutations + 1);
    for _ in 0..n_mut {
        crate::mutate::mutate_random(&mut c, &mut rng);
    }
    debug_assert!(netlist::validate(&c).is_ok());
    debug_assert!(c.sharing_consistent());
    c
}

/// Flips / erases register initial values with seeded probabilities,
/// covering fully defined, partially defined and all-`X` initial states.
///
/// Registers are shared across a driver's fanout edges (BLIF latch
/// semantics — `Circuit::sharing_consistent`), so each decision is made
/// per *(driver, position)* and written into every fanout chain that
/// defines that position; deciding per edge would manufacture sharing
/// conflicts the mapped results then faithfully inherit.
fn shape_initial_state(c: &mut Circuit, rng: &mut Rng64) {
    // Three regimes: keep the FSM's defined state (reset-style), sprinkle
    // X into it (partial), or erase almost everything (power-up unknown).
    let x_prob = match rng.below(3) {
        0 => 0.0,
        1 => 0.25,
        _ => 0.9,
    };
    let flip_prob = 0.2;
    let nodes: Vec<_> = c.node_ids().collect();
    for n in nodes {
        let fanout: Vec<_> = c.node(n).fanout().to_vec();
        let maxw = fanout
            .iter()
            .map(|&e| c.edge(e).weight())
            .max()
            .unwrap_or(0);
        for i in 0..maxw {
            let new = if rng.chance(x_prob) {
                Bit::X
            } else if rng.chance(flip_prob) {
                // Flip the position's merged value (the base circuit is
                // consistent, so the fold cannot hit a conflict).
                let merged = fanout
                    .iter()
                    .filter_map(|&e| c.edge(e).ffs().get(i).copied())
                    .try_fold(Bit::X, Bit::merge)
                    .unwrap_or(Bit::X);
                match merged {
                    Bit::Zero => Bit::One,
                    Bit::One => Bit::Zero,
                    Bit::X => Bit::from_bool(rng.chance(0.5)),
                }
            } else {
                continue;
            };
            for &e in &fanout {
                if let Some(b) = c.ffs_mut(e).get_mut(i) {
                    *b = new;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_valid_and_deterministic() {
        let cfg = GenConfig::default();
        for seed in 0..24 {
            let a = generate_case(seed, &cfg);
            netlist::validate(&a).unwrap();
            assert!(a.max_fanin() <= 2, "seed {seed}");
            assert!(!a.inputs().is_empty() && !a.outputs().is_empty());
            let b = generate_case(seed, &cfg);
            assert_eq!(netlist::write_blif(&a), netlist::write_blif(&b));
        }
    }

    #[test]
    fn seeds_diversify_structure() {
        let cfg = GenConfig::default();
        let blifs: std::collections::HashSet<String> = (0..12)
            .map(|s| netlist::write_blif(&generate_case(s, &cfg)))
            .collect();
        assert!(blifs.len() >= 11, "seeds should produce distinct circuits");
    }

    #[test]
    fn initial_state_spectrum_is_covered() {
        // Across a seed range we must see defined, partial and X-heavy
        // initial states — the oracle's Compatibility mode exists for the
        // latter two.
        let cfg = GenConfig::default();
        let (mut any_defined, mut any_x) = (false, false);
        for seed in 0..24 {
            let c = generate_case(seed, &cfg);
            for e in c.edge_ids() {
                for &b in c.edge(e).ffs() {
                    match b {
                        Bit::X => any_x = true,
                        _ => any_defined = true,
                    }
                }
            }
        }
        assert!(any_defined && any_x);
    }

    #[test]
    fn respects_gate_bound() {
        let cfg = GenConfig {
            k: 4,
            max_gates: 60,
            max_mutations: 4,
        };
        for seed in 0..12 {
            let c = generate_case(seed, &cfg);
            // Mutations may add a handful of gates past the growth bound.
            assert!(
                c.num_gates() <= cfg.max_gates + cfg.max_mutations,
                "seed {seed}: {} gates",
                c.num_gates()
            );
        }
    }
}
