//! Differential fuzzing for the mapper/retimer pipeline.
//!
//! The paper's headline claims are *relational*: TurboMap-frt's Φ is
//! optimal among forward-retimed mappings (Theorem 3 — so
//! Φ(TurboMap) ≤ Φ(TurboMap-frt) ≤ Φ(FlowMap-frt)), every mapped result
//! is sequentially equivalent to its source, and the forward-retimed
//! flows always have a computable initial state (Section 3.3 — the
//! property the `⋆` rows of Table 1 show general retiming lacks). This
//! crate turns our three from-scratch implementations into each other's
//! oracles:
//!
//! * [`gen`] — a seeded, std-only generator of structurally valid
//!   sequential netlists: cyclic FSM cores ([`workloads::generate_fsm`])
//!   grown with live gates ([`workloads::grow`]), diversified with
//!   partial/`X` initial states and the [`mutate`] operators.
//! * [`mutate`] — apply–validate–revert mutation operators: gate
//!   insertion, fanin rewiring ("merge"), forward retiming by hand (with
//!   the Touati–Brayton initial-state update) and initial-value flips.
//! * [`oracle`] — runs TurboMap-frt, FlowMap-frt and TurboMap on a case
//!   and checks the Φ-ordering invariant, sequential equivalence
//!   (three-valued simulation, [`netlist::EquivMode::Compatibility`]),
//!   initial-state computability of the forward-retimed flows, and
//!   byte-determinism across `sweep_workers` settings. Mapper panics are
//!   caught and reported as verdicts, so a panicking case can still be
//!   shrunk.
//! * [`shrink`] — a delta-debugging minimizer: drops primary outputs,
//!   bypasses gates (concatenating register chains so no combinational
//!   cycle can appear), trims registers and X-ifies initial values,
//!   keeping any candidate that still fails with the same verdict kind
//!   and is strictly smaller.
//! * [`corpus`] — persists failing cases as BLIF plus a JSON manifest
//!   (`turbomap-fuzz/repro/v1`: seed, config, verdict) under
//!   `fuzz/corpus/`.
//! * [`campaign`] — drives the whole thing on the [`engine`] batch pool
//!   with per-case deadlines, cancellation, telemetry counters
//!   (`cases_run`, `oracle_failures`, `shrink_steps`), histograms
//!   (`fuzz_case_gates`, `fuzz_case_nanos`) and structured-log progress.

pub mod campaign;
pub mod corpus;
pub mod gen;
pub mod mutate;
pub mod oracle;
pub mod shrink;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport, CaseStatus};
pub use gen::{generate_case, GenConfig};
pub use oracle::{judge_mapped, run_oracle, CheckKind, OracleConfig, OracleOutcome, Violation};
pub use shrink::{shrink, shrink_with, ShrinkConfig, ShrinkOutcome};
