//! Campaign driver: seeded case streams on the engine batch pool.
//!
//! A campaign is a set of `(campaign seed × case index)` jobs, each of
//! which generates a case, judges it with the [`crate::oracle`], and —
//! on failure — shrinks it and archives a repro in the corpus. Jobs run
//! under [`engine::run_batch`]: per-case soft deadlines (the watchdog
//! trips the job's cancel token; the mappers bail out cooperatively),
//! panic isolation, and per-job telemetry. Counters: `cases_run`,
//! `oracle_failures`, `shrink_steps`; histograms: `fuzz_case_gates`,
//! `fuzz_case_nanos`.
//!
//! Everything is a pure function of the config: the per-case generator
//! seed is derived from `(campaign_seed, case_index)` by splitmix, so a
//! repro manifest pins the exact case regardless of job count or
//! completion order.

use crate::corpus::{write_repro, ReproMeta};
use crate::gen::{generate_case, GenConfig};
use crate::oracle::{run_oracle, OracleConfig, OracleOutcome, Violation};
use crate::shrink::{shrink, ShrinkConfig};
use engine::telemetry::{self, Counter};
use engine::{hist, BatchOptions, JobOutcome, JobSpec, JsonValue, Rng64};
use std::path::PathBuf;
use std::time::Duration;

/// Full campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Campaign seeds; each contributes `cases_per_seed` cases.
    pub seeds: Vec<u64>,
    /// Cases per campaign seed.
    pub cases_per_seed: usize,
    /// LUT input bound K.
    pub k: usize,
    /// Generator gate bound.
    pub max_gates: usize,
    /// Generator mutation bound.
    pub max_mutations: usize,
    /// Random vectors per equivalence check.
    pub equiv_vectors: usize,
    /// Seed of the equivalence-check sequences.
    pub equiv_seed: u64,
    /// Second `sweep_workers` value for the determinism check (0 = off).
    pub alt_sweep_workers: usize,
    /// Enable the Φ-optimality certificate check per case.
    pub certificates: bool,
    /// Block count for the partition-and-conquer cross-check per case
    /// (values below 2 disable it).
    pub partitions: usize,
    /// Batch worker threads (0 → one).
    pub jobs: usize,
    /// Per-case soft deadline.
    pub timeout: Option<Duration>,
    /// Corpus directory for failing cases; `None` disables archiving.
    pub corpus_dir: Option<PathBuf>,
    /// Shrink failing cases before archiving.
    pub shrink: bool,
    /// Shrinker oracle-evaluation budget.
    pub shrink_budget: usize,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            seeds: vec![1],
            cases_per_seed: 32,
            k: 4,
            max_gates: 120,
            max_mutations: 12,
            equiv_vectors: 64,
            equiv_seed: 0xEC41_55EE,
            alt_sweep_workers: 3,
            certificates: false,
            partitions: 0,
            jobs: 0,
            timeout: Some(Duration::from_secs(60)),
            corpus_dir: Some(PathBuf::from("fuzz/corpus")),
            shrink: true,
            shrink_budget: 160,
        }
    }
}

impl CampaignConfig {
    /// The generator config slice of this campaign.
    pub fn gen_config(&self) -> GenConfig {
        GenConfig {
            k: self.k,
            max_gates: self.max_gates,
            max_mutations: self.max_mutations,
        }
    }

    /// The oracle config slice of this campaign.
    pub fn oracle_config(&self) -> OracleConfig {
        OracleConfig {
            k: self.k,
            equiv_vectors: self.equiv_vectors,
            equiv_seed: self.equiv_seed,
            alt_sweep_workers: self.alt_sweep_workers,
            certificates: self.certificates,
            partitions: self.partitions,
        }
    }
}

/// Derives the per-case generator seed (stable across job counts).
pub fn case_seed(campaign_seed: u64, index: usize) -> u64 {
    Rng64::new(campaign_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (index as u64)).next_u64()
}

/// One judged case, as reported by its job.
#[derive(Debug, Clone)]
pub struct CaseStatus {
    /// Job name (`fuzz-<seed>-<index>`).
    pub name: String,
    /// Campaign seed.
    pub seed: u64,
    /// Case index within the seed.
    pub index: usize,
    /// Gate count of the generated case.
    pub gates: usize,
    /// Register count of the generated case.
    pub ffs: usize,
    /// Violations (empty = pass).
    pub violations: Vec<Violation>,
    /// Corpus directory of the archived repro, when one was written.
    pub corpus_path: Option<PathBuf>,
    /// Accepted shrink steps.
    pub shrink_steps: usize,
}

/// Aggregated campaign result.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Total jobs submitted.
    pub total: usize,
    /// Cases that passed every check.
    pub passed: usize,
    /// Failing cases, in submission order.
    pub failures: Vec<CaseStatus>,
    /// Cases that hit their deadline (not judged).
    pub deadline: usize,
    /// Jobs that died outside the oracle's panic guards.
    pub panicked: usize,
    /// Jobs that failed for infrastructure reasons (corpus I/O, …).
    pub failed_jobs: Vec<(String, String)>,
    /// Merged telemetry across all jobs.
    pub telemetry: engine::Telemetry,
}

impl CampaignReport {
    /// True when no oracle violation (and no stray panic) was seen.
    pub fn clean(&self) -> bool {
        self.failures.is_empty() && self.panicked == 0 && self.failed_jobs.is_empty()
    }
}

fn log_case_failure(name: &str, violations: &[Violation]) {
    let kinds: Vec<JsonValue> = violations
        .iter()
        .map(|v| JsonValue::str(v.kind.name()))
        .collect();
    engine::log::warn(
        "fuzz::campaign",
        "oracle violation",
        &[
            ("case", JsonValue::str(name)),
            ("kinds", JsonValue::Array(kinds)),
            (
                "first_detail",
                JsonValue::str(
                    violations
                        .first()
                        .map(|v| v.detail.clone())
                        .unwrap_or_default(),
                ),
            ),
        ],
    );
}

/// Runs the campaign; blocks until every case is judged.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let gen_cfg = cfg.gen_config();
    let oracle_cfg = cfg.oracle_config();
    let total = cfg.seeds.len() * cfg.cases_per_seed;
    engine::log::info(
        "fuzz::campaign",
        "campaign start",
        &[
            ("cases", JsonValue::UInt(total as u64)),
            ("seeds", JsonValue::UInt(cfg.seeds.len() as u64)),
            ("k", JsonValue::UInt(cfg.k as u64)),
            ("jobs", JsonValue::UInt(cfg.jobs as u64)),
        ],
    );
    let mut specs: Vec<JobSpec<CaseStatus>> = Vec::with_capacity(total);
    for &seed in &cfg.seeds {
        for index in 0..cfg.cases_per_seed {
            let name = format!("fuzz-{seed}-{index}");
            let job_name = name.clone();
            let corpus_dir = cfg.corpus_dir.clone();
            let do_shrink = cfg.shrink;
            let shrink_budget = cfg.shrink_budget;
            specs.push(JobSpec::new(name.clone(), move || {
                let t0 = std::time::Instant::now();
                let cs = case_seed(seed, index);
                let circuit = generate_case(cs, &gen_cfg);
                telemetry::record(hist::Metric::FuzzCaseGates, circuit.num_gates() as u64);
                let outcome = run_oracle(&circuit, &oracle_cfg);
                telemetry::count(Counter::CasesRun, 1);
                let status = match outcome {
                    OracleOutcome::Cancelled => {
                        return Err("cancelled before judgement".to_string())
                    }
                    OracleOutcome::Pass(_) => CaseStatus {
                        name: job_name,
                        seed,
                        index,
                        gates: circuit.num_gates(),
                        ffs: circuit.ff_count_total(),
                        violations: Vec::new(),
                        corpus_path: None,
                        shrink_steps: 0,
                    },
                    OracleOutcome::Fail { violations, .. } => {
                        telemetry::count(Counter::OracleFailures, violations.len() as u64);
                        log_case_failure(&job_name, &violations);
                        let kind = violations[0].kind;
                        let repro = if do_shrink {
                            shrink(
                                &circuit,
                                &oracle_cfg,
                                kind,
                                &ShrinkConfig {
                                    budget: shrink_budget,
                                },
                            )
                        } else {
                            crate::shrink::ShrinkOutcome {
                                circuit: circuit.clone(),
                                steps: 0,
                                evals: 0,
                            }
                        };
                        let mut corpus_path = None;
                        if let Some(dir) = &corpus_dir {
                            let meta = ReproMeta {
                                campaign_seed: seed,
                                case_index: index,
                                case_seed: cs,
                                k: gen_cfg.k,
                                max_gates: gen_cfg.max_gates,
                                max_mutations: gen_cfg.max_mutations,
                                equiv_vectors: oracle_cfg.equiv_vectors,
                                equiv_seed: oracle_cfg.equiv_seed,
                                shrink_steps: repro.steps,
                            };
                            match write_repro(
                                dir,
                                &job_name,
                                &meta,
                                &violations,
                                &circuit,
                                &repro.circuit,
                            ) {
                                Ok(p) => corpus_path = Some(p),
                                Err(e) => engine::log::error(
                                    "fuzz::corpus",
                                    "failed to write repro",
                                    &[
                                        ("case", JsonValue::str(job_name.clone())),
                                        ("error", JsonValue::str(e.to_string())),
                                    ],
                                ),
                            }
                        }
                        CaseStatus {
                            name: job_name,
                            seed,
                            index,
                            gates: circuit.num_gates(),
                            ffs: circuit.ff_count_total(),
                            violations,
                            corpus_path,
                            shrink_steps: repro.steps,
                        }
                    }
                };
                telemetry::record(hist::Metric::FuzzCaseNanos, t0.elapsed().as_nanos() as u64);
                Ok(status)
            }));
        }
    }
    let opts = BatchOptions {
        jobs: cfg.jobs,
        timeout: cfg.timeout,
    };
    let reports = engine::run_batch(specs, &opts);
    let mut out = CampaignReport {
        total,
        ..CampaignReport::default()
    };
    for r in reports {
        out.telemetry.merge(&r.telemetry);
        match r.outcome {
            JobOutcome::Completed(status) => {
                if status.violations.is_empty() {
                    out.passed += 1;
                } else {
                    out.failures.push(status);
                }
            }
            JobOutcome::DeadlineExceeded { .. } => out.deadline += 1,
            JobOutcome::Panicked(msg) => {
                out.panicked += 1;
                out.failed_jobs.push((r.name, format!("panic: {msg}")));
            }
            JobOutcome::Failed(e) => {
                // "cancelled before judgement" without a tripped token
                // would land here; so do corpus I/O failures.
                out.failed_jobs.push((r.name, e));
            }
        }
    }
    engine::log::info(
        "fuzz::campaign",
        "campaign done",
        &[
            ("cases", JsonValue::UInt(out.total as u64)),
            ("passed", JsonValue::UInt(out.passed as u64)),
            ("violations", JsonValue::UInt(out.failures.len() as u64)),
            ("deadline", JsonValue::UInt(out.deadline as u64)),
            ("panicked", JsonValue::UInt(out.panicked as u64)),
        ],
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> CampaignConfig {
        CampaignConfig {
            seeds: vec![1, 2],
            cases_per_seed: 3,
            max_gates: 40,
            max_mutations: 4,
            equiv_vectors: 24,
            alt_sweep_workers: 2,
            jobs: 2,
            timeout: Some(Duration::from_secs(120)),
            corpus_dir: None,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn small_campaign_is_clean_and_counts_cases() {
        let report = run_campaign(&quick_cfg());
        assert_eq!(report.total, 6);
        assert!(report.clean(), "failures: {:?}", report.failures);
        assert_eq!(report.passed + report.deadline, 6);
        // Telemetry merged from all jobs: every judged case counted.
        assert_eq!(
            report.telemetry.counter(Counter::CasesRun) as usize,
            report.passed
        );
        let gates = report.telemetry.hist(hist::Metric::FuzzCaseGates);
        assert!(gates.count >= report.passed as u64);
    }

    #[test]
    fn case_seed_is_stable_and_spread() {
        assert_eq!(case_seed(5, 0), case_seed(5, 0));
        let mut seen = std::collections::HashSet::new();
        for s in 1..=5u64 {
            for i in 0..20usize {
                seen.insert(case_seed(s, i));
            }
        }
        assert_eq!(seen.len(), 100, "per-case seeds must not collide");
    }
}
