//! Regression corpus of degenerate models the library must not panic on.
//!
//! Each `corpus/*.blif` file reproduces a shape that once tripped (or
//! plausibly trips) an `unwrap`/`assert` on a library path: zero-PI
//! models, zero-PO models, self-loop latches, empty-cover `.names`
//! (constant gates), and combinations. The test drives every case
//! through the whole stack — parse, validate, simulate, map, full
//! differential oracle — under `catch_unwind`, requiring typed errors
//! (or clean results) everywhere: a panic anywhere is a regression.

use fuzz::oracle::{run_oracle, OracleConfig, OracleOutcome};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

fn corpus_files() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("corpus directory exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "blif"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "corpus must not be empty");
    files
}

/// Every corpus case must go through parse → validate → simulate →
/// oracle without panicking. Invalid cases must be *rejected with typed
/// errors*; valid ones must be judged (pass or fail, but never panic —
/// the oracle itself converts mapper panics into verdicts, so we also
/// require no `MapperPanic`/`SimDivergence` verdict).
#[test]
fn degenerate_corpus_never_panics() {
    let cfg = OracleConfig {
        equiv_vectors: 16,
        alt_sweep_workers: 0,
        ..OracleConfig::default()
    };
    for path in corpus_files() {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        eprintln!("corpus case: {name}");
        let text = std::fs::read_to_string(&path).expect("corpus file readable");

        // Stage 1: both front-ends. Errors are fine, panics are not.
        let parsed = catch_unwind(AssertUnwindSafe(|| netlist::parse_blif(&text)))
            .unwrap_or_else(|_| panic!("{name}: parse_blif panicked"));
        let streamed = catch_unwind(AssertUnwindSafe(|| blifio::read_circuit_str(&text)))
            .unwrap_or_else(|_| panic!("{name}: blifio reader panicked"));
        let c = match (parsed, streamed) {
            (Ok(c), Ok(_)) => c,
            // Both readers may reject a degenerate model; they must
            // agree on rejecting it.
            (Err(_), Err(_)) => continue,
            (Ok(_), Err(e)) => panic!("{name}: only the streaming reader rejected it: {e}"),
            (Err(e), Ok(_)) => panic!("{name}: only the old reader rejected it: {e}"),
        };

        // Stage 2: validation and basic analyses must not panic.
        let valid = catch_unwind(AssertUnwindSafe(|| netlist::validate(&c)))
            .unwrap_or_else(|_| panic!("{name}: validate panicked"));
        for (what, r) in [
            (
                "clock_period",
                catch_unwind(AssertUnwindSafe(|| c.clock_period().map(|_| ()))),
            ),
            (
                "comb_topo_order",
                catch_unwind(AssertUnwindSafe(|| c.comb_topo_order().map(|_| ()))),
            ),
            (
                "simulate",
                catch_unwind(AssertUnwindSafe(|| {
                    let m = c.inputs().len();
                    let mut sim = netlist::Simulator::new(&c)?;
                    sim.run(&[vec![netlist::Bit::Zero; m], vec![netlist::Bit::One; m]])
                        .map(|_| ())
                })),
            ),
            (
                "vec_simulate",
                catch_unwind(AssertUnwindSafe(|| {
                    let m = c.inputs().len();
                    let mut sim = netlist::VecSimulator::new(&c)?;
                    sim.step(&vec![netlist::Planes::splat(netlist::Bit::X); m])
                        .map(|_| ())
                })),
            ),
            (
                "strash",
                catch_unwind(AssertUnwindSafe(|| netlist::strash(&c).map(|_| ()))),
            ),
            (
                "prune",
                catch_unwind(AssertUnwindSafe(|| {
                    let _ = netlist::prune_dead(&c);
                    Ok(())
                })),
            ),
            (
                "decompose",
                catch_unwind(AssertUnwindSafe(|| {
                    netlist::decompose_to_k(&c, 4).map(|_| ())
                })),
            ),
        ] {
            match r {
                Ok(_) => {} // typed error or success — both acceptable
                Err(_) => panic!("{name}: {what} panicked"),
            }
        }

        // Stage 3: only structurally valid circuits go to the mappers;
        // the oracle catches mapper panics and reports them as verdicts.
        if valid.is_err() {
            continue;
        }
        let out = catch_unwind(AssertUnwindSafe(|| run_oracle(&c, &cfg)))
            .unwrap_or_else(|_| panic!("{name}: run_oracle panicked outside its guards"));
        if let OracleOutcome::Fail { violations, .. } = &out {
            for v in violations {
                assert!(
                    !matches!(
                        v.kind,
                        fuzz::oracle::CheckKind::MapperPanic
                            | fuzz::oracle::CheckKind::SimDivergence
                    ),
                    "{name}: {} on flow {}: {}",
                    v.kind.name(),
                    v.flow,
                    v.detail
                );
            }
        }
    }
}
