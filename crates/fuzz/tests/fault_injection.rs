//! Fault injection: prove the oracle's checks actually fire.
//!
//! The campaign only demonstrates the *absence* of violations on correct
//! mappers; these tests corrupt a genuinely mapped result the way a
//! mapper bug would — wrong LUT logic, wrong register initial state,
//! broken K bound — and assert the corresponding oracle check reports
//! it. The last test drives the full failing-case path end to end:
//! a deliberately buggy "mapper", the delta-debugging shrinker, and the
//! corpus writer.

use fuzz::{
    generate_case, judge_mapped, shrink_with, CheckKind, GenConfig, OracleConfig, ShrinkConfig,
};
use netlist::Circuit;
use turbomap::Options;

fn gen_cfg() -> GenConfig {
    GenConfig {
        k: 4,
        max_gates: 40,
        max_mutations: 4,
    }
}

fn oracle_cfg() -> OracleConfig {
    OracleConfig {
        k: 4,
        equiv_vectors: 48,
        alt_sweep_workers: 0,
        ..OracleConfig::default()
    }
}

/// A case together with its honest TurboMap-frt result.
fn mapped_pair(seed: u64) -> (Circuit, Circuit) {
    let source = generate_case(seed, &gen_cfg());
    let r = turbomap::turbomap_frt(&source, Options::with_k(4)).expect("clean case must map");
    (source, r.circuit)
}

#[test]
fn honest_mapping_passes_the_judge() {
    for seed in 0..3 {
        let (source, mapped) = mapped_pair(seed);
        let v = judge_mapped(&source, &mapped, "turbomap-frt", &oracle_cfg());
        assert!(v.is_empty(), "seed {seed}: {v:?}");
    }
}

#[test]
fn flipped_truth_table_bit_fires_the_equivalence_check() {
    // A single wrong LUT bit is the smallest possible logic bug. Not
    // every bit is observable (don't-care rows exist), so scan until one
    // fires — but at least one must, or the oracle is blind to bad logic.
    let (source, mapped) = mapped_pair(1);
    let cfg = oracle_cfg();
    let mut fired = false;
    'outer: for g in mapped.gate_ids() {
        let tt = mapped.node(g).function().unwrap().clone();
        for r in 0..tt.num_rows() {
            let mut bad_tt = tt.clone();
            bad_tt.set(r, !bad_tt.eval_row(r));
            let mut bad = mapped.clone();
            bad.set_function(g, bad_tt);
            let v = judge_mapped(&source, &bad, "turbomap-frt", &cfg);
            if v.iter().any(|v| v.kind == CheckKind::Equivalence) {
                fired = true;
                break 'outer;
            }
        }
    }
    assert!(
        fired,
        "no flipped bit was caught — oracle blind to bad logic"
    );
}

#[test]
fn corrupted_initial_value_fires_the_equivalence_check() {
    // Inverting a register's initial value models the initial-state
    // computation going wrong (the paper's Section 3.3 machinery). The
    // oracle's Compatibility mode forgives X-vs-defined but must reject
    // a *conflicting* defined value on some observable register. A given
    // case may have few observable defined bits (the generator also
    // produces X-heavy initial states), so scan seeds until one fires.
    let cfg = oracle_cfg();
    let mut fired = false;
    'seeds: for seed in 0..8 {
        let (source, mapped) = mapped_pair(seed);
        for e in mapped.edge_ids().collect::<Vec<_>>() {
            for i in 0..mapped.edge(e).weight() {
                let flipped = match mapped.edge(e).ffs()[i] {
                    netlist::Bit::Zero => netlist::Bit::One,
                    netlist::Bit::One => netlist::Bit::Zero,
                    netlist::Bit::X => continue,
                };
                let mut bad = mapped.clone();
                bad.ffs_mut(e)[i] = flipped;
                let v = judge_mapped(&source, &bad, "turbomap-frt", &cfg);
                if v.iter().any(|v| v.kind == CheckKind::Equivalence) {
                    fired = true;
                    break 'seeds;
                }
            }
        }
    }
    assert!(fired, "no initial-value flip was caught");
}

#[test]
fn dropped_register_fires_the_equivalence_check() {
    // Losing a register entirely shifts the timing of its path — the
    // mapped result now answers one cycle early. Skip drops that break
    // validation (closing a combinational cycle): the structural check
    // owns those.
    let (source, mapped) = mapped_pair(3);
    let cfg = oracle_cfg();
    let mut fired = false;
    for e in mapped.edge_ids().collect::<Vec<_>>() {
        if mapped.edge(e).weight() == 0 {
            continue;
        }
        let mut bad = mapped.clone();
        bad.ffs_mut(e).pop();
        if netlist::validate(&bad).is_err() {
            continue;
        }
        let v = judge_mapped(&source, &bad, "turbomap-frt", &cfg);
        if v.iter().any(|v| v.kind == CheckKind::Equivalence) {
            fired = true;
            break;
        }
    }
    assert!(fired, "no dropped register was caught");
}

#[test]
fn oversized_lut_fires_the_structural_check() {
    // A mapper emitting a K+1-input LUT violates the whole premise of
    // the mapping; the K-bound check must flag it even though the logic
    // is equivalent.
    let mut c = Circuit::new("wide");
    let ins: Vec<_> = (0..5)
        .map(|i| c.add_input(format!("i{i}")).unwrap())
        .collect();
    let g = c.add_gate("wide5", netlist::TruthTable::and(5)).unwrap();
    let o = c.add_output("o").unwrap();
    for i in ins {
        c.connect(i, g, vec![]).unwrap();
    }
    c.connect(g, o, vec![]).unwrap();
    let v = judge_mapped(&c, &c, "turbomap-frt", &oracle_cfg());
    assert!(
        v.iter().any(|v| v.kind == CheckKind::StructuralInvalid),
        "K=4 bound not enforced on a 5-input LUT: {v:?}"
    );
}

#[test]
fn shrinker_converges_and_repro_lands_in_the_corpus() {
    // End-to-end failing-case path with a deliberately buggy mapper:
    // TurboMap-frt followed by one flipped LUT bit. The predicate is the
    // real differential check (source vs buggy mapping), so shrinking
    // exercises oracle-style evaluation on every candidate.
    let source = generate_case(4, &gen_cfg());
    let cfg = oracle_cfg();
    let buggy_fails = |c: &Circuit| -> bool {
        let Ok(r) = turbomap::turbomap_frt(c, Options::with_k(4)) else {
            return false;
        };
        let mut mapped = r.circuit;
        let Some(g) = mapped.gate_ids().next() else {
            return false;
        };
        let mut tt = mapped.node(g).function().unwrap().clone();
        for row in 0..tt.num_rows() {
            tt.set(row, !tt.eval_row(row)); // invert the whole LUT
        }
        mapped.set_function(g, tt);
        judge_mapped(c, &mapped, "turbomap-frt", &cfg)
            .iter()
            .any(|v| v.kind == CheckKind::Equivalence)
    };
    assert!(buggy_fails(&source), "the injected bug must be observable");

    let out = shrink_with(&source, buggy_fails, &ShrinkConfig { budget: 80 });
    // Convergence: the minimized repro still fails the same way and is
    // no larger than the original in gates + registers.
    assert!(buggy_fails(&out.circuit), "shrinking lost the failure");
    let size = |c: &Circuit| c.num_gates() + c.ff_count_total();
    assert!(size(&out.circuit) <= size(&source));
    assert!(out.evals <= 80);

    // The repro (original + minimized + manifest) lands in the corpus.
    let meta = fuzz::corpus::ReproMeta {
        campaign_seed: 0,
        case_index: 0,
        case_seed: 4,
        k: 4,
        max_gates: 40,
        max_mutations: 4,
        equiv_vectors: cfg.equiv_vectors,
        equiv_seed: cfg.equiv_seed,
        shrink_steps: out.steps,
    };
    let violations = vec![fuzz::Violation {
        kind: CheckKind::Equivalence,
        flow: "turbomap-frt",
        detail: "injected LUT inversion".into(),
    }];
    let dir = std::env::temp_dir().join(format!("tmfrt-fault-injection-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let case_dir = fuzz::corpus::write_repro(
        &dir,
        "injected-0-0",
        &meta,
        &violations,
        &source,
        &out.circuit,
    )
    .unwrap();
    for f in ["manifest.json", "original.blif", "repro.blif"] {
        assert!(case_dir.join(f).is_file(), "{f} missing from corpus");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
